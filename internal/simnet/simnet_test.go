package simnet

import (
	"math"
	"testing"

	"dlion/internal/simcompute"
)

func TestUniformMesh(t *testing.T) {
	nw := Uniform(4, simcompute.Constant(100), 0.01)
	if nw.Size() != 4 {
		t.Fatalf("size %d", nw.Size())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			bw, err := nw.BandwidthAt(i, j, 0)
			if err != nil || bw != 100 {
				t.Fatalf("bw(%d,%d) = %v, %v", i, j, bw, err)
			}
		}
	}
}

func TestTransferTime(t *testing.T) {
	nw := Uniform(2, simcompute.Constant(80), 0.02) // 80 Mbps = 10 MB/s
	d, err := nw.TransferTime(0, 1, 10_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0.01 // 10 MB at 10 MB/s + RTT/2
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("transfer %v, want %v", d, want)
	}
}

func TestTransferSelfIsFree(t *testing.T) {
	nw := Uniform(2, simcompute.Constant(1), 1)
	d, err := nw.TransferTime(1, 1, 1<<30, 0)
	if err != nil || d != 0 {
		t.Fatalf("self transfer %v, %v", d, err)
	}
}

func TestMissingLink(t *testing.T) {
	nw := New(3)
	if _, err := nw.TransferTime(0, 1, 10, 0); err == nil {
		t.Fatal("missing link must error")
	}
	if _, err := nw.BandwidthAt(0, 5, 0); err == nil {
		t.Fatal("out of range must error")
	}
}

func TestDeadLinkCrawls(t *testing.T) {
	nw := New(2)
	nw.SetLink(0, 1, Link{Bandwidth: simcompute.Constant(0)})
	d, err := nw.TransferTime(0, 1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("dead link transfer %v", d)
	}
}

func TestDynamicBandwidth(t *testing.T) {
	nw := New(2)
	nw.SetLink(0, 1, Link{Bandwidth: simcompute.Steps(0, 30, 100, 100)})
	slow, _ := nw.TransferTime(0, 1, 1_000_000, 50)
	fast, _ := nw.TransferTime(0, 1, 1_000_000, 150)
	if math.Abs(slow/fast-100.0/30.0) > 1e-9 {
		t.Fatalf("bandwidth change not reflected: %v vs %v", slow, fast)
	}
}

func TestPerWorkerEgress(t *testing.T) {
	scheds := []simcompute.Schedule{
		simcompute.Constant(50), simcompute.Constant(20),
	}
	nw := PerWorkerEgress(scheds, 0)
	bw01, _ := nw.BandwidthAt(0, 1, 0)
	bw10, _ := nw.BandwidthAt(1, 0, 0)
	if bw01 != 50 || bw10 != 20 {
		t.Fatalf("egress bw %v/%v", bw01, bw10)
	}
}

func TestFromMatrixAsymmetric(t *testing.T) {
	m := [][]float64{
		{0, 190, 181},
		{187, 0, 91},
		{171, 92, 0},
	}
	nw := FromMatrix(m, 0.05)
	bw, _ := nw.BandwidthAt(2, 1, 0)
	if bw != 92 {
		t.Fatalf("bw(2,1) = %v", bw)
	}
	bw, _ = nw.BandwidthAt(1, 2, 0)
	if bw != 91 {
		t.Fatalf("bw(1,2) = %v", bw)
	}
}

func TestFromMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromMatrix([][]float64{{0, 1}, {1}}, 0)
}

func TestSelfLinkPanics(t *testing.T) {
	nw := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	nw.SetLink(1, 1, Link{})
}
