// Package simnet models the network connecting DLion workers: per-link
// bandwidth schedules (substituting for the paper's `tc`-based emulation
// and its AWS WAN measurements), transfer-time accounting, and the network
// resource monitor workers query before generating partial gradients.
package simnet

import (
	"fmt"

	"dlion/internal/simcompute"
)

// Mbps converts megabits/second to bytes/second.
const mbps = 1e6 / 8

// Link is a directed connection between two workers with a time-varying
// bandwidth (Mbps) and a fixed propagation delay (seconds).
type Link struct {
	Bandwidth simcompute.Schedule // Mbps over virtual time
	RTT       float64             // round-trip time in seconds
}

// Network is a full mesh of directed links between n workers.
type Network struct {
	n     int
	links [][]*Link
}

// New builds a network of n workers with no links; use SetLink or one of
// the topology helpers to populate it. Self-links are implicit and free.
func New(n int) *Network {
	if n < 1 {
		panic("simnet: network needs at least one worker")
	}
	links := make([][]*Link, n)
	for i := range links {
		links[i] = make([]*Link, n)
	}
	return &Network{n: n, links: links}
}

// Size returns the number of workers.
func (nw *Network) Size() int { return nw.n }

// SetLink installs the directed link from i to j.
func (nw *Network) SetLink(i, j int, l Link) {
	if i == j {
		panic("simnet: self-link")
	}
	nw.links[i][j] = &l
}

// setShared installs a shared *Link on the directed edge i->j. Topology
// constructors use it so that a class of identical links (a cloud's LAN
// mesh, the WAN tier) is one Link object instead of O(n²) — at 1024 workers
// that is the difference between 3 allocations and a million. Links are
// read-only during a run, so sharing is safe.
func (nw *Network) setShared(i, j int, l *Link) {
	if i == j {
		panic("simnet: self-link")
	}
	nw.links[i][j] = l
}

// Link returns the directed link from i to j, or an error if absent.
func (nw *Network) Link(i, j int) (*Link, error) {
	if i < 0 || i >= nw.n || j < 0 || j >= nw.n {
		return nil, fmt.Errorf("simnet: link %d->%d out of range (n=%d)", i, j, nw.n)
	}
	l := nw.links[i][j]
	if l == nil {
		return nil, fmt.Errorf("simnet: no link %d->%d", i, j)
	}
	return l, nil
}

// BandwidthAt returns the available bandwidth (Mbps) of link i->j at time
// t. This is the paper's "network resource monitor": DLion's transmission
// speed assurance module calls it each iteration to size partial gradients.
func (nw *Network) BandwidthAt(i, j int, t float64) (float64, error) {
	l, err := nw.Link(i, j)
	if err != nil {
		return 0, err
	}
	return l.Bandwidth.At(t), nil
}

// TransferTime returns the virtual seconds needed to move bytes from i to
// j starting at time t: serialization at the current bandwidth plus half
// the RTT. Bandwidth changes mid-transfer are approximated by the bandwidth
// at the start of the transfer, matching how the paper's monitor samples
// capacity at send time.
func (nw *Network) TransferTime(i, j int, bytes int, t float64) (float64, error) {
	if i == j {
		return 0, nil
	}
	l, err := nw.Link(i, j)
	if err != nil {
		return 0, err
	}
	bw := l.Bandwidth.At(t)
	if bw <= 0 {
		bw = 0.01 // a dead link crawls rather than wedging the simulation
	}
	return float64(bytes)/(bw*mbps) + l.RTT/2, nil
}

// Uniform builds a full mesh where every directed link has the same
// bandwidth schedule and RTT. All edges share one Link object.
func Uniform(n int, bandwidth simcompute.Schedule, rtt float64) *Network {
	nw := New(n)
	l := &Link{Bandwidth: bandwidth, RTT: rtt}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nw.setShared(i, j, l)
			}
		}
	}
	return nw
}

// PerWorkerEgress builds a full mesh where all links leaving worker i share
// worker i's bandwidth schedule — the shape of the paper's Table 3 network
// rows ("50/50/35/35/20/20" assigns one figure per worker).
func PerWorkerEgress(schedules []simcompute.Schedule, rtt float64) *Network {
	nw := New(len(schedules))
	for i := range schedules {
		l := &Link{Bandwidth: schedules[i], RTT: rtt}
		for j := range schedules {
			if i != j {
				nw.setShared(i, j, l)
			}
		}
	}
	return nw
}

// Cloud describes one micro-cloud of a hierarchical federation: Workers
// nodes joined by an intra-cloud LAN full mesh.
type Cloud struct {
	Workers int                 // nodes in this cloud, >= 1
	LAN     simcompute.Schedule // intra-cloud bandwidth (Mbps)
	LANRTT  float64             // intra-cloud round-trip time (seconds)
}

// Hierarchical builds a federation of micro-clouds: workers within one
// cloud are joined by that cloud's LAN mesh, workers in different clouds by
// the shared WAN tier. This extends the paper's Table 2 single-tier AWS
// matrix to the 100–1000-worker micro-cloud federations DLion motivates:
// worker ids are assigned cloud by cloud, so cloud c owns the contiguous id
// range [sum(Workers[:c]), sum(Workers[:c+1])).
//
// The model is deliberately two-tier — every cross-cloud pair sees the same
// WAN uplink capacity, as the paper's geo-distributed measurements show WAN
// bandwidth dominated by the site's uplink rather than the specific remote
// site. Per-pair WAN asymmetries can still be layered on with SetLink.
func Hierarchical(clouds []Cloud, wan simcompute.Schedule, wanRTT float64) *Network {
	total := 0
	for ci, c := range clouds {
		if c.Workers < 1 {
			panic(fmt.Sprintf("simnet: cloud %d has %d workers", ci, c.Workers))
		}
		total += c.Workers
	}
	nw := New(total)
	wanLink := &Link{Bandwidth: wan, RTT: wanRTT}
	base := 0
	for _, c := range clouds {
		lanLink := &Link{Bandwidth: c.LAN, RTT: c.LANRTT}
		for i := base; i < base+c.Workers; i++ {
			for j := 0; j < total; j++ {
				if i == j {
					continue
				}
				if j >= base && j < base+c.Workers {
					nw.setShared(i, j, lanLink)
				} else {
					nw.setShared(i, j, wanLink)
				}
			}
		}
		base += c.Workers
	}
	return nw
}

// HierarchicalUniform builds nClouds identical micro-clouds of perCloud
// workers each: LAN meshes at lanMbps/lanRTT inside every cloud, a WAN tier
// at wanMbps/wanRTT between clouds. It is the constructor the fleet-scale
// DES benchmarks and the EXPERIMENTS.md federation recipe use.
func HierarchicalUniform(nClouds, perCloud int, lanMbps, wanMbps float64, lanRTT, wanRTT float64) *Network {
	if nClouds < 1 {
		panic("simnet: need at least one cloud")
	}
	clouds := make([]Cloud, nClouds)
	for i := range clouds {
		clouds[i] = Cloud{Workers: perCloud, LAN: simcompute.Constant(lanMbps), LANRTT: lanRTT}
	}
	return Hierarchical(clouds, simcompute.Constant(wanMbps), wanRTT)
}

// FromMatrix builds a network from an explicit bandwidth matrix (Mbps), as
// in the paper's Table 2 AWS measurements. matrix[i][j] is the bandwidth of
// link i->j; the diagonal is ignored.
func FromMatrix(matrix [][]float64, rtt float64) *Network {
	n := len(matrix)
	nw := New(n)
	for i := 0; i < n; i++ {
		if len(matrix[i]) != n {
			panic(fmt.Sprintf("simnet: matrix row %d has %d entries, want %d", i, len(matrix[i]), n))
		}
		for j := 0; j < n; j++ {
			if i != j {
				nw.SetLink(i, j, Link{Bandwidth: simcompute.Constant(matrix[i][j]), RTT: rtt})
			}
		}
	}
	return nw
}
