package simclock

import "sort"

// This file is the engine's scheduler data structure: a calendar queue
// (R. Brown, CACM 1988) storing value-typed events in time-bucketed,
// individually sorted slices. It replaces the previous container/heap of
// *event pointers, whose per-At allocation and O(log n) sift dominated the
// DES hot path at fleet scale (see DESIGN.md §14).
//
// Shape: nbuckets (a power of two) slices, each sorted by (at, seq). An
// event at virtual time `at` lives in bucket int(at/width) & mask — the
// "day of year" mapping. A dequeue cursor sweeps slots in increasing
// virtual-slot order; a slot's head event is due exactly when its own
// virtual slot number equals the cursor's. Because both enqueue and dequeue
// derive the slot from the same float division, the due test is an exact
// integer comparison — there is no epsilon boundary between a bucket's
// "year end" and the next event's timestamp.
//
// Two events with equal `at` always map to the same bucket, so the per-slot
// sort order fully determines global (at, seq) order; the differential test
// and fuzz target in calqueue_test.go prove the queue emits the exact
// sequence the reference heap does.
//
// Amortized O(1): the bucket count tracks the queue size (double above
// 2·nbuckets, halve below nbuckets/2), and each resize re-derives the
// bucket width from the live events' time spread so the average occupancy
// stays ~1–2 events per bucket. Retired bucket arrays park on a free list
// and are handed back out after a resize, so steady-state operation
// allocates nothing.

// event is one scheduled callback, stored by value inside buckets. Exactly
// one of fn (closure API) or h (zero-alloc Handler API) is non-nil.
type event struct {
	at  float64
	seq uint64
	fn  func()
	h   Handler
}

// before is the engine's total order: time, then insertion sequence.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

const (
	minBuckets = 4
	// virtCap bounds at/width so the uint64 slot conversion stays exact.
	virtCap = 1 << 50
)

type calQueue struct {
	buckets [][]event
	mask    uint64
	width   float64
	size    int

	// vslot is the dequeue cursor: the virtual slot number currently being
	// served. Its low bits select the physical bucket.
	vslot uint64

	// free holds retired bucket backing arrays for reuse across resizes.
	free [][]event
	// scratch is the rehash staging area, reused across resizes.
	scratch []event
}

func (q *calQueue) init() {
	q.buckets = make([][]event, minBuckets)
	q.mask = minBuckets - 1
	q.width = 1
	q.vslot = 0
}

// slotOf maps a timestamp to its virtual slot number. Push and pop both go
// through here, so the mapping is exactly consistent.
func (q *calQueue) slotOf(at float64) uint64 { return uint64(at / q.width) }

// push inserts ev in sorted position within its bucket.
func (q *calQueue) push(ev event) {
	if q.buckets == nil {
		q.init()
	}
	// Keep the slot arithmetic exact: times far beyond the current width's
	// range force a coarser width before insertion.
	for ev.at/q.width >= virtCap {
		q.rehash(len(q.buckets), q.width*1024)
	}
	vs := q.slotOf(ev.at)
	b := q.buckets[vs&q.mask]
	// Insertion point from the rear: schedules are mostly appended in time
	// order, so the common case is one comparison.
	i := len(b)
	for i > 0 && ev.before(&b[i-1]) {
		i--
	}
	b = append(b, event{})
	copy(b[i+1:], b[i:])
	b[i] = ev
	q.buckets[vs&q.mask] = b
	// An event behind the cursor (or into an empty queue) re-aims the sweep
	// so it cannot be missed.
	if q.size == 0 || vs < q.vslot {
		q.vslot = vs
	}
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// pop removes and returns the minimum (at, seq) event.
func (q *calQueue) pop() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	for scanned := 0; scanned < len(q.buckets); scanned++ {
		b := q.buckets[q.vslot&q.mask]
		if len(b) > 0 && q.slotOf(b[0].at) <= q.vslot {
			return q.popFront(q.vslot & q.mask), true
		}
		q.vslot++
	}
	// A full sweep found nothing due: the queue is sparse relative to the
	// current year. Jump the cursor straight to the earliest head. Equal
	// timestamps share a bucket, so the minimum head is unique.
	minIdx := -1
	var minEv *event
	for i := range q.buckets {
		if len(q.buckets[i]) == 0 {
			continue
		}
		if minEv == nil || q.buckets[i][0].before(minEv) {
			minIdx, minEv = i, &q.buckets[i][0]
		}
	}
	q.vslot = q.slotOf(minEv.at)
	return q.popFront(uint64(minIdx)), true
}

// peek returns the minimum event's timestamp without removing it, leaving
// the cursor aimed at it so the following pop is O(1).
func (q *calQueue) peek() (float64, bool) {
	if q.size == 0 {
		return 0, false
	}
	for scanned := 0; scanned < len(q.buckets); scanned++ {
		b := q.buckets[q.vslot&q.mask]
		if len(b) > 0 && q.slotOf(b[0].at) <= q.vslot {
			return b[0].at, true
		}
		q.vslot++
	}
	var minEv *event
	for i := range q.buckets {
		if len(q.buckets[i]) == 0 {
			continue
		}
		if minEv == nil || q.buckets[i][0].before(minEv) {
			minEv = &q.buckets[i][0]
		}
	}
	q.vslot = q.slotOf(minEv.at)
	return minEv.at, true
}

// popFront removes the head of bucket idx.
func (q *calQueue) popFront(idx uint64) event {
	b := q.buckets[idx]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = event{} // release the callback reference
	q.buckets[idx] = b[:len(b)-1]
	q.size--
	if q.size < len(q.buckets)/2 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize re-derives the bucket width from the live events' spread and
// redistributes them over newCount buckets.
func (q *calQueue) resize(newCount int) {
	if q.size == 0 {
		return
	}
	lo, hi := 0.0, 0.0
	first := true
	for _, b := range q.buckets {
		for i := range b {
			at := b[i].at
			if first {
				lo, hi, first = at, at, false
				continue
			}
			if at < lo {
				lo = at
			}
			if at > hi {
				hi = at
			}
		}
	}
	// Three average inter-event gaps per bucket keeps occupancy low without
	// spreading one burst of equal timestamps across the whole calendar.
	w := 3 * (hi - lo) / float64(q.size)
	if !(w > 0) {
		w = q.width // all events share one timestamp: any width works
	}
	// Keep the slot numbers exact for every queued time.
	for hi/w >= virtCap {
		w *= 1024
	}
	q.rehash(newCount, w)
}

// rehash rebuilds the bucket array with the given count and width. Events
// are staged into scratch, sorted once by (at, seq), and appended back in
// order, so every bucket comes out sorted without per-event insertion.
func (q *calQueue) rehash(newCount int, newWidth float64) {
	q.scratch = q.scratch[:0]
	for i, b := range q.buckets {
		q.scratch = append(q.scratch, b...)
		for j := range b {
			b[j] = event{}
		}
		q.free = append(q.free, b[:0])
		q.buckets[i] = nil
	}
	s := q.scratch
	sort.Slice(s, func(i, j int) bool { return s[i].before(&s[j]) })

	if cap(q.buckets) >= newCount {
		q.buckets = q.buckets[:newCount]
	} else {
		q.buckets = make([][]event, newCount)
	}
	for i := range q.buckets {
		if n := len(q.free); n > 0 {
			q.buckets[i] = q.free[n-1]
			q.free = q.free[:n-1]
		} else {
			q.buckets[i] = nil
		}
	}
	q.mask = uint64(newCount - 1)
	q.width = newWidth
	for _, ev := range s {
		idx := q.slotOf(ev.at) & q.mask
		q.buckets[idx] = append(q.buckets[idx], ev)
	}
	for i := range s {
		s[i] = event{} // drop callback references from the staging area
	}
	if len(s) > 0 {
		q.vslot = q.slotOf(s[0].at)
	}
}
