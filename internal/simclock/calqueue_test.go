package simclock

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// refEvent / refHeap are the engine's previous container/heap scheduler,
// kept verbatim as the ordering oracle for the calendar queue: both receive
// the same schedule and must emit the same (at, seq) sequence.
type refEvent struct {
	at  float64
	seq uint64
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// diffDriver feeds an identical schedule to the calendar queue and the
// reference heap and fails the test on the first divergent pop. times feeds
// pushes; popEvery interleaves pops so the cursor machinery (year sweeps,
// direct-search jumps, behind-cursor inserts) is exercised mid-stream.
func diffDriver(t *testing.T, times []float64, popEvery int) {
	t.Helper()
	var cq calQueue
	var rh refHeap
	var seq uint64
	lastPopped := math.Inf(-1)

	checkPop := func() {
		got, ok := cq.pop()
		if !ok {
			if rh.Len() != 0 {
				t.Fatalf("calendar queue empty, reference heap has %d", rh.Len())
			}
			return
		}
		want := heap.Pop(&rh).(*refEvent)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("divergence: calendar (at=%v seq=%d), heap (at=%v seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
		lastPopped = got.at
	}

	for i, at := range times {
		// An engine never schedules into the past (At clamps to Now).
		if at < lastPopped {
			at = lastPopped
		}
		seq++
		cq.push(event{at: at, seq: seq})
		heap.Push(&rh, &refEvent{at: at, seq: seq})
		if popEvery > 0 && i%popEvery == popEvery-1 {
			checkPop()
		}
	}
	for rh.Len() > 0 || cq.size > 0 {
		checkPop()
	}
	if _, ok := cq.pop(); ok {
		t.Fatal("calendar queue popped after drain")
	}
}

func TestCalendarVsHeapRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(800)
		times := make([]float64, n)
		mode := trial % 5
		for i := range times {
			switch mode {
			case 0: // uniform spread
				times[i] = rng.Float64() * 1000
			case 1: // heavy ties
				times[i] = float64(rng.Intn(8))
			case 2: // advancing clusters, like iteration completions
				times[i] = float64(i/10) + rng.Float64()*0.01
			case 3: // huge dynamic range, forces width widening
				times[i] = math.Exp(rng.Float64() * 30)
			default: // sub-second micro-gaps
				times[i] = rng.Float64() * 1e-6
			}
		}
		diffDriver(t, times, 1+trial%4)
	}
}

func TestCalendarVsHeapPushAllPopAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	times := make([]float64, 5000)
	for i := range times {
		times[i] = rng.Float64() * 50
	}
	diffDriver(t, times, 0)
}

// FuzzCalendarVsHeap decodes the fuzz input as an operation stream — two
// bytes of timestamp plus one opcode bit for an interleaved pop — and
// differentially checks the calendar queue against the reference heap.
// Runs in make fuzz-smoke.
func FuzzCalendarVsHeap(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 255, 255, 0})
	f.Add([]byte{9, 9, 9, 9, 9, 9})
	f.Add([]byte{0, 1, 128, 7, 64, 3, 32, 200, 16, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cq calQueue
		var rh refHeap
		var seq uint64
		last := 0.0
		for i := 0; i+1 < len(data); i += 2 {
			// Quantized times produce the tie storms that stress bucket
			// ordering; the byte-derived scale covers widths from micro-gaps
			// to year-jumping sparsity.
			at := float64(data[i]&0x7f) * (1 + float64(data[i+1])*37.3)
			if at < last {
				at = last
			}
			seq++
			cq.push(event{at: at, seq: seq})
			heap.Push(&rh, &refEvent{at: at, seq: seq})
			if data[i]&0x80 != 0 {
				got, ok := cq.pop()
				if !ok {
					t.Fatal("calendar queue empty while heap is not")
				}
				want := heap.Pop(&rh).(*refEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("divergence at op %d: calendar (%v,%d) heap (%v,%d)",
						i, got.at, got.seq, want.at, want.seq)
				}
				last = got.at
			}
		}
		for rh.Len() > 0 {
			got, ok := cq.pop()
			if !ok {
				t.Fatal("calendar queue drained early")
			}
			want := heap.Pop(&rh).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("drain divergence: calendar (%v,%d) heap (%v,%d)",
					got.at, got.seq, want.at, want.seq)
			}
		}
		if cq.size != 0 {
			t.Fatalf("calendar queue retains %d events after heap drained", cq.size)
		}
	})
}

// TestCalendarResizeDeterminism drives the queue through repeated grow and
// shrink cycles twice with an identical schedule and requires bit-identical
// pop sequences — the resize path (width re-derivation, staged sort, free
// list) must be a pure function of the schedule. Runs under -race via the
// Makefile race target.
func TestCalendarResizeDeterminism(t *testing.T) {
	run := func() []event {
		var cq calQueue
		var out []event
		var seq uint64
		rng := rand.New(rand.NewSource(3))
		last := 0.0
		for cycle := 0; cycle < 6; cycle++ {
			// grow: push a burst far above the resize-up threshold
			for i := 0; i < 500; i++ {
				seq++
				at := last + rng.Float64()*10
				cq.push(event{at: at, seq: seq})
			}
			// shrink: drain most of it, crossing resize-down thresholds
			for i := 0; i < 450; i++ {
				ev, ok := cq.pop()
				if !ok {
					t.Fatal("queue drained early")
				}
				last = ev.at
				out = append(out, event{at: ev.at, seq: ev.seq})
			}
		}
		for {
			ev, ok := cq.pop()
			if !ok {
				break
			}
			out = append(out, event{at: ev.at, seq: ev.seq})
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("pop counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || a[i].seq != b[i].seq {
			t.Fatalf("pop %d differs: (%v,%d) vs (%v,%d)", i, a[i].at, a[i].seq, b[i].at, b[i].seq)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at || (a[i].at == a[i-1].at && a[i].seq < a[i-1].seq) {
			t.Fatalf("pop %d out of order", i)
		}
	}
}

// TestCalendarBucketReuse checks the free list actually recycles retired
// bucket arrays: after a steady-state warmup, a push/pop cycle must not
// allocate.
func TestCalendarBucketReuse(t *testing.T) {
	var cq calQueue
	var seq uint64
	at := 0.0
	for i := 0; i < 4096; i++ {
		seq++
		at += 0.5
		cq.push(event{at: at, seq: seq})
	}
	for cq.size > 64 {
		cq.pop()
	}
	allocs := testing.AllocsPerRun(200, func() {
		seq++
		at += 0.5
		cq.push(event{at: at, seq: seq})
		cq.pop()
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state push/pop allocates %.1f times per op", allocs)
	}
}
