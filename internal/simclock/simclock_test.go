package simclock

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var when float64
	e.At(10, func() {
		e.After(5, func() { when = e.Now() })
	})
	e.RunAll()
	if when != 15 {
		t.Fatalf("After fired at %v, want 15", when)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	var order []string
	e.At(10, func() {
		e.At(3, func() { order = append(order, "past") })
		e.At(11, func() { order = append(order, "future") })
	})
	e.RunAll()
	if len(order) != 2 || order[0] != "past" || order[1] != "future" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 11 {
		t.Fatalf("clock %v", e.Now())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New()
	ran := false
	e.After(-5, func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock should park at horizon, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run(20)
	if len(fired) != 4 {
		t.Fatalf("resume failed: fired=%v", fired)
	}
	// Uniform parking: the queue drained at t=10, but the simulated
	// interval ran to 20, so the clock parks at the horizon — the same
	// place it parks when stopped mid-queue.
	if e.Now() != 20 {
		t.Fatalf("clock should park at horizon after drain, got %v", e.Now())
	}
}

// TestRunParksAtHorizonUniformly is the regression test for the drained-
// queue parking fix: both stop paths (queue drained early, next event past
// the horizon) must leave the clock at the horizon, and a horizon in the
// past must never move the clock backwards.
func TestRunParksAtHorizonUniformly(t *testing.T) {
	// Drain path: single event at 3, horizon 10.
	e := New()
	e.At(3, func() {})
	e.Run(10)
	if e.Now() != 10 {
		t.Fatalf("drained queue: clock at %v, want horizon 10", e.Now())
	}
	// Mid-queue path: next event beyond the horizon.
	e2 := New()
	e2.At(3, func() {})
	e2.At(50, func() {})
	e2.Run(10)
	if e2.Now() != 10 || e2.Pending() != 1 {
		t.Fatalf("mid-queue stop: now=%v pending=%d", e2.Now(), e2.Pending())
	}
	// Empty queue from the start.
	e3 := New()
	e3.Run(7)
	if e3.Now() != 7 {
		t.Fatalf("empty queue: clock at %v, want 7", e3.Now())
	}
	// Past horizon: clock never moves backwards.
	e3.Run(2)
	if e3.Now() != 7 {
		t.Fatalf("past horizon moved clock to %v", e3.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	e.Every(2, func() { count++ }, func() bool { return count >= 4 })
	e.Run(100)
	if count != 4 {
		t.Fatalf("count %d", count)
	}
	// the stop-check event at t=10 drains the queue; the clock then parks
	// at the horizon, uniformly with the mid-queue stop path
	if e.Now() != 100 {
		t.Fatalf("now %v", e.Now())
	}
}

// TestEveryStopsOnFirstTick: a stop predicate that is already true when the
// first tick fires must suppress fn entirely.
func TestEveryStopsOnFirstTick(t *testing.T) {
	e := New()
	fired := 0
	e.Every(2, func() { fired++ }, func() bool { return true })
	e.Run(20)
	if fired != 0 {
		t.Fatalf("fn fired %d times despite stop-on-first-tick", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("stopped ticker left %d events queued", e.Pending())
	}
}

// TestEveryTickExactlyAtHorizon: Run executes events at t <= horizon
// inclusively, so a tick landing exactly on the horizon fires and its
// successor (past the horizon) stays queued.
func TestEveryTickExactlyAtHorizon(t *testing.T) {
	e := New()
	var at []float64
	e.Every(5, func() { at = append(at, e.Now()) }, nil)
	e.Run(10)
	if len(at) != 2 || at[0] != 5 || at[1] != 10 {
		t.Fatalf("ticks %v, want [5 10]", at)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want the t=15 tick", e.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("clock at %v, want 10", e.Now())
	}
}

// TestAtExactHorizonBoundary: an event scheduled exactly at the horizon is
// inside the simulated interval.
func TestAtExactHorizonBoundary(t *testing.T) {
	e := New()
	ran := false
	e.At(10, func() { ran = true })
	e.Run(10)
	if !ran {
		t.Fatal("event at the horizon boundary did not fire")
	}
}

func TestEveryHorizonBounded(t *testing.T) {
	e := New()
	count := 0
	e.Every(1, func() { count++ }, nil)
	e.Run(10.5)
	if count != 10 {
		t.Fatalf("count %d, want 10", count)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New().Every(0, func() {}, nil)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine must be false")
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(times []float64) bool {
		e := New()
		last := -1.0
		ok := true
		for _, at := range times {
			if at < 0 {
				at = -at
			}
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
