package simclock

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New()
	var when float64
	e.At(10, func() {
		e.After(5, func() { when = e.Now() })
	})
	e.RunAll()
	if when != 15 {
		t.Fatalf("After fired at %v, want 15", when)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	var order []string
	e.At(10, func() {
		e.At(3, func() { order = append(order, "past") })
		e.At(11, func() { order = append(order, "future") })
	})
	e.RunAll()
	if len(order) != 2 || order[0] != "past" || order[1] != "future" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 11 {
		t.Fatalf("clock %v", e.Now())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New()
	ran := false
	e.After(-5, func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock should park at horizon, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run(20)
	if len(fired) != 4 || e.Now() != 10 {
		t.Fatalf("resume failed: fired=%v now=%v", fired, e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	e.Every(2, func() { count++ }, func() bool { return count >= 4 })
	e.Run(100)
	if count != 4 {
		t.Fatalf("count %d", count)
	}
	// the stop-check event at t=10 fires last; with an empty queue the
	// clock stays there rather than parking at the horizon
	if e.Now() != 10 {
		t.Fatalf("now %v", e.Now())
	}
}

func TestEveryHorizonBounded(t *testing.T) {
	e := New()
	count := 0
	e.Every(1, func() { count++ }, nil)
	e.Run(10.5)
	if count != 10 {
		t.Fatalf("count %d, want 10", count)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New().Every(0, func() {}, nil)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine must be false")
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(times []float64) bool {
		e := New()
		last := -1.0
		ok := true
		for _, at := range times {
			if at < 0 {
				at = -at
			}
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
