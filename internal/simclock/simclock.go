// Package simclock is a discrete-event simulation engine with a virtual
// clock. It replaces the wall-clock of the paper's physical clusters: a
// 1500-virtual-second DLion experiment executes in however long the actual
// gradient math takes, while compute and network durations are charged to
// virtual time by the cost models in simcompute and simnet.
//
// Events fire in (time, insertion-order) order, so simulations are fully
// deterministic. The scheduler is a calendar queue (calqueue.go): value-typed
// events in time-bucketed sorted slices with O(1) amortized enqueue/dequeue,
// sized for the fleet-scale federations of DESIGN.md §14.
package simclock

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine inside
// Run/Step.
type Engine struct {
	now      float64
	seq      uint64
	executed uint64
	q        calQueue
}

// Handler is a pre-bound event callback. Scheduling one stores the
// interface value inside a value-typed queue event, so hot paths (message
// delivery) implement Fire on a pooled struct instead of capturing state in
// a fresh closure per event.
type Handler interface{ Fire() }

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.q.size }

// Executed returns how many events have fired since construction — the
// numerator of a DES throughput measurement (events per wall second).
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now: the event runs next, preserving causality.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d clamps to 0.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// AtHandler schedules h.Fire at absolute virtual time t with the same
// clamping as At. Unlike At, it allocates nothing: the handler rides inside
// the value-typed queue event.
func (e *Engine) AtHandler(t float64, h Handler) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, h: h})
}

// AfterHandler schedules h.Fire d seconds from now. Negative d clamps to 0.
func (e *Engine) AfterHandler(d float64, h Handler) {
	if d < 0 {
		d = 0
	}
	e.AtHandler(e.now+d, h)
}

// Every schedules fn at now+period, now+2·period, … until either stop
// returns true (checked before each firing) or the engine runs past its
// horizon. period must be > 0.
func (e *Engine) Every(period float64, fn func(), stop func() bool) {
	if period <= 0 {
		panic("simclock: Every with period <= 0")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev, ok := e.q.pop()
	if !ok {
		return false
	}
	e.now = ev.at
	e.executed++
	if ev.h != nil {
		ev.h.Fire()
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the queue is empty or the next event is later
// than horizon. The clock always parks at the horizon afterwards (events
// beyond the horizon remain queued), whether the stop came from a drained
// queue or from a future-dated event — the simulated interval [Now, horizon]
// elapsed either way. Run never moves the clock backwards: a horizon in the
// past executes nothing and leaves Now unchanged.
func (e *Engine) Run(horizon float64) {
	for {
		at, ok := e.q.peek()
		if !ok || at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes every queued event (including ones scheduled by other
// events) until the queue drains. Use only with workloads that are known to
// terminate.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}
