// Package simclock is a discrete-event simulation engine with a virtual
// clock. It replaces the wall-clock of the paper's physical clusters: a
// 1500-virtual-second DLion experiment executes in however long the actual
// gradient math takes, while compute and network durations are charged to
// virtual time by the cost models in simcompute and simnet.
//
// Events fire in (time, insertion-order) order, so simulations are fully
// deterministic.
package simclock

import "container/heap"

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine inside
// Run/Step.
type Engine struct {
	now      float64
	seq      uint64
	executed uint64
	events   eventHeap
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed returns how many events have fired since construction — the
// numerator of a DES throughput measurement (events per wall second).
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to Now: the event runs next, preserving causality.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d clamps to 0.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Every schedules fn at now+period, now+2·period, … until either stop
// returns true (checked before each firing) or the engine runs past its
// horizon. period must be > 0.
func (e *Engine) Every(period float64, fn func(), stop func() bool) {
	if period <= 0 {
		panic("simclock: Every with period <= 0")
	}
	var tick func()
	tick = func() {
		if stop != nil && stop() {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is later
// than horizon. The clock finishes at min(horizon, last-event time); events
// beyond the horizon remain queued.
func (e *Engine) Run(horizon float64) {
	for len(e.events) > 0 && e.events[0].at <= horizon {
		e.Step()
	}
	if e.now < horizon && len(e.events) > 0 {
		// clock parks at the horizon when stopped mid-queue
		e.now = horizon
	}
}

// RunAll executes every queued event (including ones scheduled by other
// events) until the queue drains. Use only with workloads that are known to
// terminate.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}
