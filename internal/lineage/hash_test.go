package lineage

import (
	"math"
	"runtime"
	"testing"

	"dlion/internal/data"
	"dlion/internal/grad"
	"dlion/internal/nn"
	"dlion/internal/tensor"
)

func TestTensorHashProperties(t *testing.T) {
	a := tensor.New(2, 3)
	b := tensor.New(2, 3)
	for i := range a.Data {
		a.Data[i] = float32(i) * 0.25
		b.Data[i] = float32(i) * 0.25
	}
	if TensorHash(a) != TensorHash(b) {
		t.Fatal("identical tensors hash differently")
	}

	// The shape is part of the commitment: same bytes, different layout.
	c := tensor.New(3, 2)
	copy(c.Data, a.Data)
	if TensorHash(c) == TensorHash(a) {
		t.Fatal("reshaped tensor hashes identically")
	}

	// Exact bit patterns, not float semantics: -0 and +0 compare equal as
	// floats but are distinct weight bytes, so they must hash apart.
	b.Data[0] = float32(math.Copysign(0, -1))
	a.Data[0] = 0
	if TensorHash(a) == TensorHash(b) {
		t.Fatal("-0 and +0 hash identically")
	}

	// The combined digest is independent of map iteration order but bound to
	// names: renaming a variable changes it.
	w1 := map[string]*tensor.Tensor{"x": a, "y": c}
	w2 := map[string]*tensor.Tensor{"y": c, "x": a}
	if WeightsHash(w1) != WeightsHash(w2) {
		t.Fatal("weights hash depends on map order")
	}
	w3 := map[string]*tensor.Tensor{"x": a, "z": c}
	if WeightsHash(w1) == WeightsHash(w3) {
		t.Fatal("renamed variable hashes identically")
	}

	if Fingerprint("a") == Fingerprint("b") || Fingerprint("") == Fingerprint("a") {
		t.Fatal("fingerprint collisions on trivial inputs")
	}
}

// trainDigest builds a Cipher model, trains it for a few seeded steps, and
// returns the resulting weight digest plus the weights themselves.
func trainDigest(t *testing.T) (Hash, map[string]*tensor.Tensor) {
	t.Helper()
	train, _ := data.MustGenerate(data.Config{
		Name: "lineage", NumClasses: 3, Train: 96, Test: 24,
		Channels: 1, Height: 8, Width: 8, Noise: 0.35, Bumps: 3, Seed: 5,
	})
	m := nn.CipherSpec(1, 8, 8, 3, 99).Build()
	idx := make([]int, 8)
	for step := 0; step < 4; step++ {
		for i := range idx {
			idx[i] = (step*len(idx) + i) % train.Len()
		}
		x, y := train.Batch(idx)
		m.TrainStep(x, y)
		m.ApplySGD(0.05)
	}
	return ModelHash(m), m.Weights()
}

// TestDigestStableAcrossParallelism is the digest-stability property the
// audit trail rests on: with deterministic kernel reductions on, the digest
// of a seeded training run must not depend on how many kernel workers or OS
// threads happened to run it.
func TestDigestStableAcrossParallelism(t *testing.T) {
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	var base Hash
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		prev := tensor.SetMaxWorkers(procs)
		digest, _ := trainDigest(t)
		tensor.SetMaxWorkers(prev)
		if base == 0 {
			base = digest
			continue
		}
		if digest != base {
			t.Fatalf("digest %s at parallelism %d, want %s: training is not a pure function of the seed",
				digest, procs, base)
		}
	}
}

// TestQuantRoundTripChangesDigest pins down the flip side of stability: a
// quantize→dequantize pass through either wire precision perturbs weight
// bits, and the digest must *detect* that — lossy precision laundering can
// never masquerade as the original checkpoint.
func TestQuantRoundTripChangesDigest(t *testing.T) {
	defer tensor.SetDeterministic(tensor.SetDeterministic(true))
	base, weights := trainDigest(t)
	if got := WeightsHash(weights); got != base {
		t.Fatalf("ModelHash %s vs WeightsHash %s for the same model", base, got)
	}

	// f16 round-trip: drops mantissa bits on almost every trained value.
	f16 := map[string]*tensor.Tensor{}
	for name, w := range weights {
		c := tensor.New(w.Shape...)
		for i, v := range w.Data {
			c.Data[i] = grad.F16FromBits(grad.F16Bits(v))
		}
		f16[name] = c
	}
	if WeightsHash(f16) == base {
		t.Fatal("f16 round-trip left the digest unchanged")
	}

	// int8 round-trip: symmetric per-variable scale, the wire's i8 mode.
	i8 := map[string]*tensor.Tensor{}
	for name, w := range weights {
		var maxAbs float32
		for _, v := range w.Data {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		c := tensor.New(w.Shape...)
		for i, v := range w.Data {
			c.Data[i] = grad.DequantizeI8(grad.QuantizeI8(v, scale, 0), scale, 0)
		}
		i8[name] = c
	}
	if WeightsHash(i8) == base {
		t.Fatal("int8 round-trip left the digest unchanged")
	}

	// And the per-variable table attributes the change: at least one variable
	// digest must differ, none may be missing.
	orig, quant := VarHashes(weights), VarHashes(i8)
	changed := 0
	for name, h := range orig {
		if quant[name] != h {
			changed++
		}
	}
	if changed == 0 || len(orig) != len(quant) {
		t.Fatalf("per-variable digests missed the quantization: %d changed of %d", changed, len(orig))
	}
}
