// Package lineage makes checkpoints self-describing: every checkpoint a
// DLion worker publishes carries a manifest committing to the exact weight
// bits (an FNV-1a content digest, the same hash family the conformance
// harness uses), the training position that produced them (iteration,
// membership epoch), the parent checkpoint they evolved from, and the
// seeded configuration that — replayed deterministically — must reproduce
// them bit-exactly. The manifest is the answer to "which weights served
// this request, and what training history produced them": serve's /modelz
// exposes the chain, the jobs store records it per worker, and dlion-audit
// re-executes the seeded segment and confirms the published digest
// (deterministic re-execution + commitment-to-weights, the practical
// verification tier gascity's verifiable-inference doc argues for).
package lineage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
)

// Schema tags a v1 manifest (the JSON "schema" field).
const Schema = "dlion.lineage.v1"

// FileSuffix is the sidecar manifest extension: a checkpoint written to
// "model.ckpt" carries its manifest in "model.ckpt.manifest.json".
const FileSuffix = ".manifest.json"

// ErrBadManifest reports a structurally invalid manifest.
var ErrBadManifest = errors.New("lineage: bad manifest")

// ErrNotReplayable reports an audit request against a manifest that carries
// no replay descriptor: its lineage chain is still verifiable link by link,
// but no deterministic re-execution can reproduce its digest.
var ErrNotReplayable = errors.New("lineage: manifest has no replay descriptor")

// Hash is a 64-bit FNV-1a content digest. It marshals as a 16-digit hex
// string: JSON numbers above 2^53 lose precision in common tooling, and hex
// digests are what operators grep for.
type Hash uint64

// String formats the digest as fixed-width hex.
func (h Hash) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// MarshalJSON implements json.Marshaler (quoted hex).
func (h Hash) MarshalJSON() ([]byte, error) { return []byte(`"` + h.String() + `"`), nil }

// UnmarshalJSON implements json.Unmarshaler, accepting the quoted hex form.
func (h *Hash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("%w: digest %s", ErrBadManifest, b)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("%w: digest %q", ErrBadManifest, s)
	}
	*h = Hash(v)
	return nil
}

// Substrate names the execution substrate a replayable segment ran on.
type Substrate string

// The two deterministic substrates the conformance harness drives.
const (
	SubstrateSim      Substrate = "sim"      // discrete-event simulator (internal/cluster)
	SubstrateRealtime Substrate = "realtime" // in-process broker runtime (internal/realtime)
)

// Valid reports whether s names a known substrate.
func (s Substrate) Valid() bool { return s == SubstrateSim || s == SubstrateRealtime }

// Replay describes the deterministic training segment that produced a
// checkpoint, in enough detail for an auditor to re-execute it: the
// substrate it ran on, the worker-group size, and the exchange shape. The
// segment's length is the manifest's Iter, its seed the manifest's Seed,
// and the audited replica the manifest's Worker — replay carries only what
// the manifest does not already commit to. Replayable segments run under
// the ordered-apply discipline (core.Config.OrderedApply) with
// deterministic kernels, which is what makes the digest bit-reproducible
// on either substrate.
type Replay struct {
	// Substrate is where the segment originally ran ("sim" or "realtime").
	// Under the ordered-apply discipline both substrates reproduce the same
	// bits, so an auditor may replay on either — or both — regardless.
	Substrate Substrate `json:"substrate"`
	// Workers is the segment's worker-group size (>= 2).
	Workers int `json:"workers"`
	// Sparse selects Max-N sparse exchange instead of dense full exchange.
	Sparse bool `json:"sparse,omitempty"`
	// Quant is the wire precision every worker sent at: "", "f16", or "i8".
	Quant string `json:"quant,omitempty"`
}

// Manifest is the signed lineage record published next to a checkpoint.
// Digest commits to the exact weight bits; Parent links to the previous
// checkpoint in this worker's chain; Iter/Epoch locate the checkpoint in
// training time; ConfigHash fingerprints the training configuration; and
// Replay (when present) makes the whole record independently verifiable by
// deterministic re-execution.
type Manifest struct {
	Schema string `json:"schema"`
	// Model is the architecture name the checkpoint restores into.
	Model string `json:"model"`
	// Digest is the combined content digest of every weight variable
	// (sorted by name; see WeightsHash).
	Digest Hash `json:"digest"`
	// Vars holds the per-variable digests, so a mismatch is attributable to
	// a single variable (the same attribution testkit.DigestWeights gives).
	Vars map[string]Hash `json:"vars,omitempty"`
	// Parent is the digest of the previous checkpoint in this worker's
	// chain (0 for a root checkpoint), ParentIter its iteration.
	Parent     Hash  `json:"parent,omitempty"`
	ParentIter int64 `json:"parent_iter,omitempty"`
	// Iter is the worker's completed iteration count at snapshot time.
	Iter int64 `json:"iter"`
	// Epoch is the worker's membership epoch at snapshot time.
	Epoch int64 `json:"epoch,omitempty"`
	// Worker is the replica the checkpoint was taken from.
	Worker int `json:"worker"`
	// Job labels the control-plane job (empty for hand-launched clusters).
	Job string `json:"job,omitempty"`
	// Config is the human-readable configuration summary; ConfigHash its
	// FNV-1a fingerprint (what Fingerprint(Config) returns).
	Config     string `json:"config,omitempty"`
	ConfigHash Hash   `json:"config_hash,omitempty"`
	// Seed is the shared cluster seed (dataset, sharding, replica init).
	Seed uint64 `json:"seed,omitempty"`
	// Precision is the gradient wire precision ("f32", "f16", "int8", or
	// "auto" when per-link).
	Precision string `json:"precision,omitempty"`
	// Replay, when present, describes the deterministic segment an auditor
	// can re-execute to confirm Digest (and Parent at ParentIter).
	Replay *Replay `json:"replay,omitempty"`
}

// Validate checks structural invariants shared by every codec.
func (m *Manifest) Validate() error {
	switch {
	case m == nil:
		return fmt.Errorf("%w: nil", ErrBadManifest)
	case m.Schema != Schema:
		return fmt.Errorf("%w: schema %q, want %q", ErrBadManifest, m.Schema, Schema)
	case m.Model == "":
		return fmt.Errorf("%w: empty model name", ErrBadManifest)
	case m.Digest == 0:
		return fmt.Errorf("%w: zero digest", ErrBadManifest)
	case m.Iter < 0:
		return fmt.Errorf("%w: iter %d", ErrBadManifest, m.Iter)
	case m.Epoch < 0:
		return fmt.Errorf("%w: epoch %d", ErrBadManifest, m.Epoch)
	case m.Worker < 0:
		return fmt.Errorf("%w: worker %d", ErrBadManifest, m.Worker)
	case m.Parent != 0 && (m.ParentIter < 0 || m.ParentIter >= m.Iter):
		return fmt.Errorf("%w: parent iter %d not before iter %d",
			ErrBadManifest, m.ParentIter, m.Iter)
	case m.Parent == 0 && m.ParentIter != 0:
		return fmt.Errorf("%w: parent iter %d without parent digest",
			ErrBadManifest, m.ParentIter)
	}
	if m.Replay != nil {
		switch {
		case !m.Replay.Substrate.Valid():
			return fmt.Errorf("%w: replay substrate %q", ErrBadManifest, m.Replay.Substrate)
		case m.Replay.Workers < 2:
			return fmt.Errorf("%w: replay workers %d", ErrBadManifest, m.Replay.Workers)
		case m.Worker >= m.Replay.Workers:
			return fmt.Errorf("%w: worker %d outside replay group [0,%d)",
				ErrBadManifest, m.Worker, m.Replay.Workers)
		case m.Replay.Quant != "" && m.Replay.Quant != "f16" && m.Replay.Quant != "i8":
			return fmt.Errorf("%w: replay quant %q", ErrBadManifest, m.Replay.Quant)
		}
	}
	return nil
}

// Link chains m to its parent manifest: Parent and ParentIter are copied
// from the parent's Digest and Iter. A nil parent marks m a root.
func (m *Manifest) Link(parent *Manifest) {
	if parent == nil {
		m.Parent, m.ParentIter = 0, 0
		return
	}
	m.Parent, m.ParentIter = parent.Digest, parent.Iter
}

// VerifyLink checks that child extends parent: same model and worker chain,
// the child's parent digest naming the parent's content, and training time
// strictly advancing.
func VerifyLink(parent, child *Manifest) error {
	switch {
	case parent == nil || child == nil:
		return fmt.Errorf("%w: nil link end", ErrBadManifest)
	case child.Parent != parent.Digest:
		return fmt.Errorf("lineage: child parent digest %s does not name parent %s",
			child.Parent, parent.Digest)
	case child.ParentIter != parent.Iter:
		return fmt.Errorf("lineage: child parent iter %d, parent is at %d",
			child.ParentIter, parent.Iter)
	case child.Model != parent.Model:
		return fmt.Errorf("lineage: model %q extends %q", child.Model, parent.Model)
	case child.Iter <= parent.Iter:
		return fmt.Errorf("lineage: iter %d does not advance past parent %d",
			child.Iter, parent.Iter)
	}
	return nil
}

// VerifyChain checks a worker's manifest chain oldest-first: every adjacent
// pair must satisfy VerifyLink and the head must be a root (or its parent
// simply precedes the retained window, which headIsRoot=false allows).
func VerifyChain(chain []*Manifest, headIsRoot bool) error {
	if len(chain) == 0 {
		return nil
	}
	if headIsRoot && chain[0].Parent != 0 {
		return fmt.Errorf("lineage: chain head has parent %s, want root", chain[0].Parent)
	}
	for i := 1; i < len(chain); i++ {
		if err := VerifyLink(chain[i-1], chain[i]); err != nil {
			return fmt.Errorf("lineage: link %d: %w", i, err)
		}
	}
	return nil
}

// EncodeJSON serializes the manifest (indented — manifests are small and
// read by humans in incident reviews).
func EncodeJSON(m *Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// DecodeJSON parses and validates a manifest produced by EncodeJSON.
// Unknown fields are rejected so a typo'd manifest fails loudly instead of
// silently losing its digest.
func DecodeJSON(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SidecarPath returns the manifest path for a checkpoint path.
func SidecarPath(ckptPath string) string { return ckptPath + FileSuffix }

// WriteFile writes the manifest as the checkpoint's sidecar (atomic
// tmp+rename, so a watcher never reads a torn manifest).
func WriteFile(ckptPath string, m *Manifest) error {
	raw, err := EncodeJSON(m)
	if err != nil {
		return err
	}
	path := SidecarPath(ckptPath)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a checkpoint's sidecar manifest.
func ReadFile(ckptPath string) (*Manifest, error) {
	raw, err := os.ReadFile(SidecarPath(ckptPath))
	if err != nil {
		return nil, err
	}
	return DecodeJSON(raw)
}
