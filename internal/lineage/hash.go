package lineage

import (
	"hash/fnv"
	"math"
	"sort"

	"dlion/internal/nn"
	"dlion/internal/tensor"
)

// TensorHash returns the FNV-1a 64-bit hash of a tensor's exact float32
// bit patterns (little-endian), preceded by its shape. Two tensors hash
// equally iff they are bitwise identical, including NaN payloads and
// signed zeros. This is the primitive the conformance harness's weight
// digests (testkit.Digest) are built on.
func TensorHash(t *tensor.Tensor) Hash {
	h := fnv.New64a()
	var buf [4]byte
	le32 := func(v uint32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	for _, d := range t.Shape {
		le32(uint32(d))
	}
	for _, v := range t.Data {
		le32(math.Float32bits(v))
	}
	return Hash(h.Sum64())
}

// VarHashes hashes every variable of a weight map independently, so a
// digest mismatch can be attributed to a single variable.
func VarHashes(w map[string]*tensor.Tensor) map[string]Hash {
	out := make(map[string]Hash, len(w))
	for name, t := range w {
		out[name] = TensorHash(t)
	}
	return out
}

// WeightsHash folds a weight map into one content digest: the per-variable
// hashes are combined in sorted name order (name bytes, then hash), so the
// digest is independent of map iteration order and two weight maps hash
// equally iff every variable is bitwise identical.
func WeightsHash(w map[string]*tensor.Tensor) Hash {
	return combine(VarHashes(w))
}

// ModelHash digests every parameter of a model — the manifest commitment a
// checkpoint writer publishes.
func ModelHash(m *nn.Model) Hash {
	vars := make(map[string]Hash, len(m.Params()))
	for _, p := range m.Params() {
		vars[p.Name] = TensorHash(p.W)
	}
	return combine(vars)
}

// combine folds per-variable hashes in sorted name order.
func combine(vars map[string]Hash) Hash {
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [8]byte
	for _, name := range names {
		h.Write([]byte(name))
		v := uint64(vars[name])
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return Hash(h.Sum64())
}

// Fingerprint hashes a canonical configuration summary string (e.g.
// core.Config.Fingerprint()) into the manifest's config commitment.
func Fingerprint(s string) Hash {
	h := fnv.New64a()
	h.Write([]byte(s))
	return Hash(h.Sum64())
}
