package lineage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chained returns a valid, fully-populated manifest for mutation tests.
func chained() *Manifest {
	return &Manifest{
		Schema: Schema, Model: "cipher", Digest: 0xabc, Parent: 0xdef,
		ParentIter: 4, Iter: 10, Epoch: 2, Worker: 1, Job: "job-3",
		Config: "name=x lr=0.05", ConfigHash: Fingerprint("name=x lr=0.05"),
		Seed: 7, Precision: "f16",
		Vars: map[string]Hash{"conv1/W": 1, "conv1/b": 2},
		Replay: &Replay{
			Substrate: SubstrateSim, Workers: 2, Sparse: true, Quant: "f16",
		},
	}
}

func TestHashJSON(t *testing.T) {
	h := Hash(0xdeadbeefcafef00d)
	raw, err := h.MarshalJSON()
	if err != nil || string(raw) != `"deadbeefcafef00d"` {
		t.Fatalf("marshal: %s, %v", raw, err)
	}
	var got Hash
	if err := got.UnmarshalJSON(raw); err != nil || got != h {
		t.Fatalf("unmarshal: %s err %v", got, err)
	}
	for _, bad := range []string{`42`, `"xyz"`, `""`, `"10000000000000000"`} {
		if err := got.UnmarshalJSON([]byte(bad)); !errors.Is(err, ErrBadManifest) {
			t.Errorf("UnmarshalJSON(%s): err %v, want ErrBadManifest", bad, err)
		}
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := chained()
	raw, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != m.Digest || got.Parent != m.Parent || got.Iter != m.Iter ||
		got.ConfigHash != m.ConfigHash || got.Vars["conv1/b"] != 2 ||
		got.Replay == nil || got.Replay.Quant != "f16" {
		t.Fatalf("round trip drifted: %+v", got)
	}

	// Unknown fields are forgeries or version skew — never silently dropped.
	forged := strings.Replace(string(raw), `"schema"`, `"extra": 1, "schema"`, 1)
	if _, err := DecodeJSON([]byte(forged)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeJSON([]byte("{}")); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("empty object: err %v, want ErrBadManifest", err)
	}
	if _, err := DecodeJSON([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Manifest){
		"bad schema":           func(m *Manifest) { m.Schema = "dlion.lineage.v0" },
		"empty model":          func(m *Manifest) { m.Model = "" },
		"zero digest":          func(m *Manifest) { m.Digest = 0 },
		"negative iter":        func(m *Manifest) { m.Iter = -1 },
		"negative epoch":       func(m *Manifest) { m.Epoch = -1 },
		"negative worker":      func(m *Manifest) { m.Worker = -1 },
		"parent not before":    func(m *Manifest) { m.ParentIter = m.Iter },
		"parent iter orphaned": func(m *Manifest) { m.Parent = 0 },
		"bad substrate":        func(m *Manifest) { m.Replay.Substrate = "cloud" },
		"one-worker replay":    func(m *Manifest) { m.Replay.Workers = 1 },
		"worker outside group": func(m *Manifest) { m.Worker = 2 },
		"bad quant":            func(m *Manifest) { m.Replay.Quant = "i4" },
	}
	for name, mutate := range cases {
		m := chained()
		mutate(m)
		if err := m.Validate(); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: err %v, want ErrBadManifest", name, err)
		}
	}
	if err := (*Manifest)(nil).Validate(); !errors.Is(err, ErrBadManifest) {
		t.Error("nil manifest validated")
	}
	if err := chained().Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	bare := &Manifest{Schema: Schema, Model: "m", Digest: 1}
	if err := bare.Validate(); err != nil {
		t.Errorf("bare root rejected: %v", err)
	}
}

func TestLinkAndVerify(t *testing.T) {
	root := &Manifest{Schema: Schema, Model: "cipher", Digest: 10, Iter: 3}
	mid := &Manifest{Schema: Schema, Model: "cipher", Digest: 20, Iter: 6}
	tip := &Manifest{Schema: Schema, Model: "cipher", Digest: 30, Iter: 9}
	mid.Link(root)
	tip.Link(mid)
	if mid.Parent != 10 || mid.ParentIter != 3 {
		t.Fatalf("link: %+v", mid)
	}
	if err := VerifyLink(root, mid); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain([]*Manifest{root, mid, tip}, true); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(nil, true); err != nil {
		t.Fatal(err)
	}
	// A window that starts mid-chain is fine unless headIsRoot demands a root.
	if err := VerifyChain([]*Manifest{mid, tip}, false); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain([]*Manifest{mid, tip}, true); err == nil {
		t.Fatal("non-root head accepted as root")
	}

	bads := map[string]func() *Manifest{
		"wrong digest": func() *Manifest { c := *mid; c.Parent = 11; return &c },
		"wrong iter":   func() *Manifest { c := *mid; c.ParentIter = 4; return &c },
		"wrong model":  func() *Manifest { c := *mid; c.Model = "other"; return &c },
		"no progress":  func() *Manifest { c := *mid; c.Iter = root.Iter; return &c },
	}
	for name, build := range bads {
		if err := VerifyLink(root, build()); err == nil {
			t.Errorf("%s: link accepted", name)
		}
	}
	if err := VerifyLink(nil, mid); !errors.Is(err, ErrBadManifest) {
		t.Errorf("nil parent: %v", err)
	}

	// Unlinking makes a root again.
	mid2 := *mid
	mid2.Link(nil)
	if mid2.Parent != 0 || mid2.ParentIter != 0 {
		t.Fatalf("unlink: %+v", mid2)
	}
}

func TestSidecarFile(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "model.ckpt")
	if got, want := SidecarPath(ckpt), ckpt+FileSuffix; got != want {
		t.Fatalf("sidecar path %q, want %q", got, want)
	}
	m := chained()
	if err := WriteFile(ckpt, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != m.Digest || got.Parent != m.Parent || got.Config != m.Config {
		t.Fatalf("sidecar drifted: %+v", got)
	}
	// No leftover tmp file from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want just the sidecar", len(entries))
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing sidecar read")
	}
	if err := os.WriteFile(SidecarPath(ckpt), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(ckpt); err == nil {
		t.Fatal("corrupt sidecar read")
	}
	// An invalid manifest must not be writable in the first place.
	bad := chained()
	bad.Digest = 0
	if err := WriteFile(ckpt, bad); err == nil {
		t.Fatal("invalid manifest written")
	}
}
