// Dynamic resources: watch DLion's controllers react to capacity changes.
// Reproduces the shape of the paper's Figures 19 and 20 interactively: the
// LBS controller re-balances local batch sizes as core counts change, and
// the per-link prioritized exchange shrinks/grows partial gradients as
// bandwidth steps between 30 and 100 Mbps.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"dlion"
)

func main() {
	const horizon = 400.0

	// Compute capacity: homogeneous 24 cores, then a heterogeneous phase
	// (24/24/12/12/4/4), then inverted (4/4/12/12/24/24).
	caps := make([]dlion.Schedule, 6)
	hetero := []float64{24, 24, 12, 12, 4, 4}
	for i := range caps {
		caps[i] = dlion.StepSchedule(
			0, 24,
			horizon/4, hetero[i],
			3*horizon/4, hetero[5-i],
		)
	}
	// Bandwidth: every link steps 30 -> 100 -> 30 Mbps.
	nets := make([]dlion.Schedule, 6)
	for i := range nets {
		nets[i] = dlion.StepSchedule(0, 30, horizon/4, 100, 3*horizon/4, 30)
	}
	env := dlion.CustomEnvironment("dynamic-demo",
		caps, dlion.EgressNetwork(nets, dlion.WANLatency), 7)

	sys := dlion.DLion()
	sys.DKT.Period = 10
	sys.Batch.ProfilePeriod = horizon / 40 // re-profile often enough to react

	dc := dlion.CipherDataConfig(0.05, 11)
	model := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	model.WireBytes *= 5 // keep the paper's comm/compute ratio (DESIGN.md)

	res, err := dlion.Run(dlion.ExperimentConfig{
		System: sys, Model: model, Data: dc,
		N: env.N, Computes: env.Computes, Network: env.Network,
		Horizon: horizon, TracePeriod: horizon / 20, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)   cores(w0/w4)  LBS per worker            bw(Mbps)  grads w0->w1")
	for _, tr := range res.Traces {
		bw, _ := env.Network.BandwidthAt(0, 1, tr.T)
		fmt.Printf("%4.0f   %2.0f/%-2.0f        %-24v  %3.0f       %d\n",
			tr.T,
			env.Computes[0].Capacity.At(tr.T), env.Computes[4].Capacity.At(tr.T),
			tr.LBS, bw, tr.SelCount[[2]int{0, 1}])
	}
	fmt.Printf("\nfinal accuracy %.3f after %v iterations per worker\n",
		res.Timeline.FinalMean(), res.Iters)
	fmt.Println("note how LBS follows each worker's current core count, and the")
	fmt.Println("partial gradient size follows the link bandwidth.")
}
