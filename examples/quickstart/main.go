// Quickstart: train the Cipher model with DLion on a simulated 6-worker
// micro-cloud and print the accuracy timeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlion"
)

func main() {
	// Run DLion in the heterogeneous Hetero SYS A environment (cores
	// 24/24/12/12/6/6, egress 50/50/35/35/20/20 Mbps) for 300 virtual
	// seconds. The gradient math is real; time is simulated, so this
	// finishes in a few seconds of wall time.
	res, err := dlion.Quick("dlion", "Hetero SYS A", 300)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)    mean accuracy   stddev across workers")
	for _, p := range res.Timeline {
		fmt.Printf("%5.0f   %.3f           %.3f\n", p.T, p.Mean, p.Std)
	}
	fmt.Printf("\nfinal accuracy: %.3f\n", res.Timeline.FinalMean())
	fmt.Printf("iterations per worker: %v\n", res.Iters)
	fmt.Printf("total traffic: %d MB\n", res.TotalBytes>>20)

	// Compare against the Baseline system (whole gradients, synchronous).
	base, err := dlion.Quick("baseline", "Hetero SYS A", 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline final accuracy: %.3f (DLion improvement: %.2fx)\n",
		base.Timeline.FinalMean(),
		res.Timeline.FinalMean()/base.Timeline.FinalMean())
}
