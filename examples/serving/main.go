// Serving: close the paper's train-near-data loop by standing up the whole
// pipeline in one process — an in-process broker, two real-mode training
// workers broadcasting checkpoints, and an inference server that hot-swaps
// to each new version while answering /predict with dynamic micro-batching.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"dlion"
)

func main() {
	const (
		n        = 2
		duration = 6 * time.Second
	)

	broker := dlion.NewBroker()
	defer broker.Close()

	// Shared dataset and spec, exactly as the workers would derive them.
	dc := dlion.CipherDataConfig(0.02, 11)
	train, _, err := dlion.GenerateData(dc)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := dlion.PartitionData(train, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 99)

	// Inference side: registry seeded with the untrained model, fed by
	// weight broadcasts; server on an ephemeral port.
	reg := dlion.NewServeRegistry(spec)
	if err := reg.Publish(0, "init", spec.Build().Checkpoint()); err != nil {
		log.Fatal(err)
	}
	sub, err := broker.Subscribe(dlion.ServeWeightsChannel, 64)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	go reg.WatchBroadcasts(ctx, sub.C)

	srv, err := dlion.ListenAndServeModels(dlion.ServeConfig{
		Registry: reg, MaxBatch: 16, MaxDelay: 2 * time.Millisecond,
	}, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("inference server on", srv.URL())

	// Training side: two workers over the broker; each broadcasts its model
	// every second, tagged with its training iteration.
	sys := dlion.DLion()
	sys.DKT.Period = 20
	sys.Batch.DynamicBatching = false
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		transport := dlion.NewBrokerTransport(broker, i)
		defer transport.Close()
		node, err := dlion.NewRealNode(dlion.RealNodeConfig{
			ID: i, N: n, System: sys, Spec: spec,
			Shard: shards[i], Transport: transport,
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := node.Run(ctx); err != nil {
				log.Printf("worker %d: %v", id, err)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					iter, ckpt, err := node.Checkpoint(ctx)
					if err != nil || iter == 0 {
						continue
					}
					broker.Publish(dlion.ServeWeightsChannel, dlion.EncodeWeightsUpdate(iter, ckpt))
				}
			}
		}()
	}

	// Client side: one prediction per second against whatever version is
	// freshest; the reported model_seq climbs as training progresses.
	input := make([]float32, dc.Channels*dc.Height*dc.Width)
	sample, _ := shards[0].NextBatch(1)
	copy(input, sample.Data)
	body, _ := json.Marshal(map[string][][]float32{"inputs": {input}})
	for i := 0; i < int(duration/time.Second); i++ {
		time.Sleep(time.Second)
		resp, err := http.Post(srv.URL()+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var pr struct {
			ModelSeq    int64 `json:"model_seq"`
			Predictions []struct {
				Class int       `json:"class"`
				Probs []float32 `json:"probs"`
			} `json:"predictions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		p := pr.Predictions[0]
		fmt.Printf("t=%ds model_seq=%-4d class=%d p=%.2f\n", i+1, pr.ModelSeq, p.Class, p.Probs[p.Class])
	}

	wg.Wait()
	if v := reg.Current(); v != nil {
		fmt.Printf("\nserved %d hot-swaps; final version seq=%d from %s\n",
			reg.Swaps()-1, v.Seq, v.Source)
	}
}
