// Real cluster: run three DLion workers as goroutines over the TCP message
// broker (the Redis substitute) on wall-clock time — no simulator. This is
// the deployment shape of the original prototype: one shared broker, one
// worker per machine; here all three live in one process for a
// self-contained demo, exchanging real encoded messages over loopback TCP.
//
//	go run ./examples/realcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dlion"
)

func main() {
	const (
		n        = 3
		duration = 8 * time.Second
	)

	// One broker serves the whole cluster, like the prototype's Redis.
	broker := dlion.NewBroker()
	defer broker.Close()
	srv, err := dlion.ServeBroker(broker, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("broker listening on", srv.Addr())

	// Shared dataset, partitioned into per-worker shards; every node builds
	// the same model spec with the same seed so replicas start identical.
	dc := dlion.CipherDataConfig(0.02, 11) // 1200 train samples
	train, _, err := dlion.GenerateData(dc)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := dlion.PartitionData(train, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 99)

	sys := dlion.DLion()
	sys.DKT.Period = 20
	sys.Batch.DynamicBatching = false // wall-clock profiling noise is high in-process

	nodes := make([]*dlion.RealNode, n)
	for i := 0; i < n; i++ {
		transport, err := dlion.NewTCPTransport(srv.Addr(), i)
		if err != nil {
			log.Fatal(err)
		}
		defer transport.Close()
		nodes[i], err = dlion.NewRealNode(dlion.RealNodeConfig{
			ID: i, N: n, System: sys, Spec: spec,
			Shard: shards[i], Transport: transport,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(id int, nd *dlion.RealNode) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				log.Printf("worker %d: %v", id, err)
			}
		}(i, node)
	}

	// Progress while training runs.
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
loop:
	for {
		select {
		case <-ticker.C:
			fmt.Print("progress:")
			for i, nd := range nodes {
				fmt.Printf("  w%d iter=%d loss=%.2f", i,
					nd.Worker().Iter(), nd.Worker().AvgRecentLoss())
			}
			fmt.Println()
		case <-done:
			break loop
		}
	}

	fmt.Println("\nfinal state after", duration, "of wall-clock training:")
	for i, nd := range nodes {
		s := nd.Worker().Stats()
		fmt.Printf("  worker %d: %d iterations, %d samples, %d KB sent, loss %.3f\n",
			i, s.Iters, s.SamplesProcessed, s.BytesSent>>10, nd.Worker().AvgRecentLoss())
	}
}
