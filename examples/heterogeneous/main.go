// Heterogeneous micro-clouds: build a custom experiment with the full API
// — explicit compute capacities, an asymmetric WAN from the paper's Table 2
// AWS measurements, and a side-by-side comparison of all five systems.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"dlion"
)

func main() {
	// The "Table2 WAN" environment wires the six workers with the paper's
	// measured AWS inter-region bandwidths (Virginia, Oregon, Ireland,
	// Mumbai, Seoul, Sydney) — a realistic asymmetric WAN.
	const horizon = 300.0

	fmt.Println("Training Cipher over the Table 2 AWS WAN (six regions):")
	fmt.Printf("%-10s %-10s %-14s %-10s\n", "system", "accuracy", "iterations", "MB sent")
	type row struct {
		name string
		acc  float64
	}
	var best, worst row
	for _, sys := range []string{"baseline", "hop", "gaia", "ako", "dlion"} {
		res, err := dlion.Quick(sys, "Table2 WAN", horizon)
		if err != nil {
			log.Fatal(err)
		}
		acc := res.Timeline.FinalMean()
		minIt, maxIt := res.Iters[0], res.Iters[0]
		for _, it := range res.Iters {
			if it < minIt {
				minIt = it
			}
			if it > maxIt {
				maxIt = it
			}
		}
		fmt.Printf("%-10s %-10.3f %4d..%-8d %-10d\n", sys, acc, minIt, maxIt, res.TotalBytes>>20)
		if best.name == "" || acc > best.acc {
			best = row{sys, acc}
		}
		if worst.name == "" || acc < worst.acc {
			worst = row{sys, acc}
		}
	}
	fmt.Printf("\nbest %s (%.3f), worst %s (%.3f): %.2fx spread after %.0f virtual seconds\n",
		best.name, best.acc, worst.name, worst.acc, best.acc/worst.acc, horizon)

	// The same systems on a pristine LAN for contrast: the spread collapses
	// because the network stops being the bottleneck.
	fmt.Println("\nSame systems on the homogeneous LAN (Homo A):")
	for _, sys := range []string{"baseline", "dlion"} {
		res, err := dlion.Quick(sys, "Homo A", horizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %.3f\n", sys, res.Timeline.FinalMean())
	}
}
