// Continuous learning: the paper's motivating workload — edge devices keep
// generating data, and models "periodically start or resume training with
// the collected data" (§1). This example runs DLion in real mode over the
// in-process broker through two training sessions: train on the initial
// data, checkpoint the best worker's model, let new data arrive, then
// resume from the checkpoint and keep improving.
//
//	go run ./examples/continuous
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dlion"
)

const (
	workers = 3
	session = 4 * time.Second
)

func main() {
	broker := dlion.NewBroker()
	defer broker.Close()

	// Initial data collection: 900 samples spread over 3 micro-clouds.
	dc := dlion.CipherDataConfig(0.015, 11)
	gen, train, test, err := dlion.NewDataGenerator(dc)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := dlion.PartitionData(train, workers, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 99)

	sys := dlion.DLion()
	sys.DKT.Period = 15
	sys.Batch.DynamicBatching = false // wall-clock profiling is noisy in-process

	fmt.Printf("session 1: training on %d samples for %v\n", train.Len(), session)
	nodes := runSession(broker, sys, spec, shards, nil)
	best := bestWorker(nodes)
	acc1, _ := best.Model().Evaluate(test, 64)
	fmt.Printf("session 1 done: best worker accuracy %.3f\n", acc1)

	// Persist the learned model, as a deployment would between sessions.
	checkpoint := best.Model().Checkpoint()
	fmt.Printf("checkpointed %d KB of weights\n", len(checkpoint)>>10)

	// New data arrives at the edges while training is offline.
	chunk := gen.Next(600)
	if err := dlion.GrowShards(train, chunk, shards); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d new samples collected; dataset now %d\n", chunk.Len(), train.Len())

	// Session 2: fresh worker processes resume from the checkpoint.
	fmt.Printf("session 2: resuming from checkpoint for %v\n", session)
	nodes = runSession(broker, sys, spec, shards, checkpoint)
	best = bestWorker(nodes)
	acc2, _ := best.Model().Evaluate(test, 64)
	fmt.Printf("session 2 done: best worker accuracy %.3f (was %.3f)\n", acc2, acc1)
	if acc2 >= acc1 {
		fmt.Println("resumed training improved the model with the new data ✓")
	} else {
		fmt.Println("note: wall-clock runs vary; rerun for a longer session to see gains")
	}
}

// runSession trains `workers` nodes for one wall-clock session, optionally
// restoring every replica from a checkpoint first.
func runSession(broker *dlion.Broker, sys dlion.SystemConfig, spec dlion.ModelSpec,
	shards []*dlion.Shard, checkpoint []byte) []*dlion.RealNode {

	nodes := make([]*dlion.RealNode, workers)
	for i := range nodes {
		node, err := dlion.NewRealNode(dlion.RealNodeConfig{
			ID: i, N: workers, System: sys, Spec: spec, Shard: shards[i],
			Transport: dlion.NewBrokerTransport(broker, i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if checkpoint != nil {
			if err := node.Worker().Model().Restore(checkpoint); err != nil {
				log.Fatal(err)
			}
		}
		nodes[i] = node
	}
	ctx, cancel := context.WithTimeout(context.Background(), session)
	defer cancel()
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(id int, nd *dlion.RealNode) {
			defer wg.Done()
			if err := nd.Run(ctx); err != nil {
				log.Printf("worker %d: %v", id, err)
			}
		}(i, node)
	}
	wg.Wait()
	for i, nd := range nodes {
		fmt.Printf("  worker %d: %d iterations, loss %.3f\n",
			i, nd.Worker().Iter(), nd.Worker().AvgRecentLoss())
	}
	return nodes
}

func bestWorker(nodes []*dlion.RealNode) interface {
	Model() *dlion.Model
} {
	best := nodes[0].Worker()
	for _, nd := range nodes[1:] {
		if nd.Worker().AvgRecentLoss() < best.AvgRecentLoss() {
			best = nd.Worker()
		}
	}
	return best
}
