// Command dlion-audit verifies checkpoint lineage by deterministic replay.
// Given a manifest (a .manifest.json sidecar, or a checkpoint path whose
// sidecar to read), it re-executes the seeded training segment the manifest
// describes — under the ordered-apply discipline, on the sim and/or in-proc
// broker substrate — and confirms the published weight digest bit-exactly,
// including the parent digest via a second, truncated replay when the
// manifest is chained. Any divergence is a verification failure and the
// process exits nonzero.
//
// Examples:
//
//	dlion-audit -self-test                      # built-in forgery-detection check
//	dlion-audit -manifest model.ckpt            # reads model.ckpt.manifest.json
//	dlion-audit -manifest m.manifest.json -substrate sim
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dlion/internal/lineage"
	"dlion/internal/testkit"
)

func main() {
	var (
		manifest  = flag.String("manifest", "", "manifest to verify: a .manifest.json file, or a checkpoint path whose sidecar to read")
		substrate = flag.String("substrate", "both", "replay substrate: sim, realtime, or both")
		selfTest  = flag.Bool("self-test", false, "run the built-in seeded-segment + forgery-detection checks instead of auditing a file")
		timeout   = flag.Duration("timeout", 2*time.Minute, "overall replay deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	subs, err := substrates(*substrate)
	if err != nil {
		fatal(err)
	}

	if *selfTest {
		if err := selfCheck(ctx, subs); err != nil {
			fatal(fmt.Errorf("dlion-audit: self-test: %w", err))
		}
		fmt.Println("dlion-audit: self-test passed: clean chain verified on", names(subs),
			"and both forgeries (mutated weight, forged parent digest) were detected")
		return
	}

	if *manifest == "" {
		fatal(fmt.Errorf("dlion-audit: -manifest is required (or run -self-test); see -h"))
	}
	man, err := loadManifest(*manifest)
	if err != nil {
		fatal(fmt.Errorf("dlion-audit: %w", err))
	}
	for _, s := range subs {
		if err := testkit.Audit(ctx, man, s); err != nil {
			fatal(fmt.Errorf("dlion-audit: VERIFICATION FAILED on %s: %w", s, err))
		}
		fmt.Printf("dlion-audit: %s: digest %s verified at iter %d (worker %d of %d)\n",
			s, man.Digest, man.Iter, man.Worker, man.Replay.Workers)
	}
}

// substrates parses the -substrate flag into the replay targets to run.
func substrates(flag string) ([]lineage.Substrate, error) {
	switch flag {
	case "sim":
		return []lineage.Substrate{lineage.SubstrateSim}, nil
	case "realtime":
		return []lineage.Substrate{lineage.SubstrateRealtime}, nil
	case "both":
		return []lineage.Substrate{lineage.SubstrateSim, lineage.SubstrateRealtime}, nil
	}
	return nil, fmt.Errorf("dlion-audit: -substrate %q (want sim, realtime, or both)", flag)
}

func names(subs []lineage.Substrate) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = string(s)
	}
	return strings.Join(parts, "+")
}

// loadManifest reads a manifest from path: the JSON sidecar itself when path
// names one (or any file that parses as a manifest), otherwise the sidecar
// next to the checkpoint at path.
func loadManifest(path string) (*lineage.Manifest, error) {
	if !strings.HasSuffix(path, lineage.FileSuffix) {
		if raw, err := os.ReadFile(path); err == nil {
			if man, err := lineage.DecodeJSON(raw); err == nil {
				return man, nil
			}
		}
		return lineage.ReadFile(path) // checkpoint path → its sidecar
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return lineage.DecodeJSON(raw)
}

// selfCheck is the end-to-end detector check the CI audit gate runs: a
// seeded parent→child segment chain must verify on every requested
// substrate, and two forgeries — a single mutated weight value with honestly
// recomputed digests, and a single-bit parent-digest flip — must both fail.
func selfCheck(ctx context.Context, subs []lineage.Substrate) error {
	rc := testkit.ReplayConfig{
		Substrate: lineage.SubstrateSim, Workers: 2, Worker: 0, Steps: 4, Seed: 11,
	}
	_, parent, err := testkit.CheckpointSegment(ctx, rc, nil)
	if err != nil {
		return fmt.Errorf("parent segment: %w", err)
	}
	crc := rc
	crc.Steps = 10
	_, child, err := testkit.CheckpointSegment(ctx, crc, parent)
	if err != nil {
		return fmt.Errorf("child segment: %w", err)
	}
	if err := lineage.VerifyLink(parent, child); err != nil {
		return err
	}
	for _, s := range subs {
		if err := testkit.Audit(ctx, child, s); err != nil {
			return fmt.Errorf("clean chain failed audit on %s: %w", s, err)
		}
		fmt.Printf("dlion-audit: self-test: clean chain verified on %s (digest %s, parent %s@%d)\n",
			s, child.Digest, child.Parent, child.ParentIter)
	}

	// Forgery 1: flip one weight value, recompute the digests honestly over
	// the mutated weights — the replay must still disagree.
	weights, err := crc.Run(ctx)
	if err != nil {
		return err
	}
	var vars []string
	for name := range weights {
		vars = append(vars, name)
	}
	sort.Strings(vars)
	weights[vars[0]].Data[0] += 1e-3
	mutated := *child
	mutated.Digest = lineage.WeightsHash(weights)
	mutated.Vars = lineage.VarHashes(weights)
	if err := testkit.Audit(ctx, &mutated, subs[0]); err == nil {
		return fmt.Errorf("mutated weight in %q passed audit — detector broken", vars[0])
	}
	fmt.Printf("dlion-audit: self-test: mutated weight in %q detected\n", vars[0])

	// Forgery 2: a single-bit flip in the parent digest — the truncated
	// parent replay must disagree.
	forged := *child
	forged.Parent ^= 1
	if err := testkit.Audit(ctx, &forged, subs[0]); err == nil {
		return fmt.Errorf("forged parent digest passed audit — detector broken")
	}
	fmt.Println("dlion-audit: self-test: forged parent digest detected")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
