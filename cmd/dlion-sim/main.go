// Command dlion-sim runs one (system, environment) combination on the
// micro-cloud simulator and prints the accuracy timeline.
//
// Usage:
//
//	dlion-sim -system dlion -env "Hetero SYS A" -horizon 300
//	dlion-sim -system baseline -env "Homo A" -scale 0.05 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dlion/internal/cluster"
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/nn"
	"dlion/internal/report"
	"dlion/internal/systems"
)

func main() {
	var (
		sysName = flag.String("system", "dlion", "system: baseline, ako, gaia, hop, dlion, max10, dlion-no-wu, dlion-no-dbwu")
		envName = flag.String("env", "Homo A", "Table 3 environment name (see -envs)")
		horizon = flag.Float64("horizon", 300, "virtual seconds to simulate")
		scale   = flag.Float64("scale", 0.05, "dataset scale (1.0 = the paper's full size)")
		seed    = flag.Uint64("seed", 7, "experiment seed")
		trace   = flag.Bool("trace", false, "print LBS/gradient-size traces")
		amplify = flag.Float64("amplify", 5, "wire-size amplification (see DESIGN.md)")
		dktp    = flag.Int64("dkt-period", 10, "DLion DKT period in iterations (scaled)")
		envs    = flag.Bool("envs", false, "list environments and exit")
	)
	flag.Parse()

	if *envs {
		for _, n := range env.Names() {
			fmt.Println(n)
		}
		return
	}

	sys, err := systems.ByName(*sysName)
	if err != nil {
		fatal(err)
	}
	if sys.DKT.Enabled {
		sys.DKT.Period = *dktp
		sys.DKT.Lambda = 1.0
	}
	e, err := env.Get(*envName, *seed)
	if err != nil {
		fatal(err)
	}
	dc := data.CIFAR10Config(*scale, *seed+13)
	model := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	if e.GPU {
		dc = data.ImageNet100Config(*scale/25, *seed+13)
		model = nn.MobileNetLiteSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	}
	model.WireBytes = int(float64(model.WireBytes) * *amplify)

	cfg := cluster.Config{
		System: sys, Model: model, Data: dc,
		N: e.N, Computes: e.Computes, Network: e.Network,
		Horizon: *horizon, Seed: *seed,
	}
	if *trace {
		cfg.TracePeriod = *horizon / 30
	}
	fmt.Printf("running %s in %s for %.0f virtual seconds (%s, %d train samples)\n",
		sys.Name, e.Name, *horizon, dc.Name, dc.Train)
	res, err := cluster.Run(cfg)
	if err != nil {
		fatal(err)
	}

	t := report.NewTable("accuracy timeline", "t(s)", "mean acc", "stddev", "loss")
	var ys []float64
	for _, pt := range res.Timeline {
		t.AddRow(fmt.Sprintf("%.0f", pt.T), pt.Mean, fmt.Sprintf("%.3f", pt.Std),
			fmt.Sprintf("%.3f", pt.Loss))
		ys = append(ys, pt.Mean)
	}
	fmt.Println(t)
	fmt.Println("trend:", report.Sparkline(ys))
	fmt.Printf("final accuracy %.3f | iterations per worker %v | %d MB sent\n",
		res.Timeline.FinalMean(), res.Iters, res.TotalBytes>>20)
	if *trace {
		tt := report.NewTable("traces", "t(s)", "GBS", "LBS", "values w0->w1")
		for _, tr := range res.Traces {
			tt.AddRow(fmt.Sprintf("%.0f", tr.T), tr.GBS,
				fmt.Sprint(tr.LBS), tr.SelCount[[2]int{0, 1}])
		}
		fmt.Println(tt)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-sim:", err)
	os.Exit(1)
}
