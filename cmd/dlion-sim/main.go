// Command dlion-sim runs one (system, environment) combination on the
// micro-cloud simulator and prints the accuracy timeline.
//
// Usage:
//
//	dlion-sim -system dlion -env "Hetero SYS A" -horizon 300
//	dlion-sim -system baseline -env "Homo A" -scale 0.05 -trace
//	dlion-sim -report run.json            # emit the BENCH JSON run report
//	dlion-sim -debug-addr 127.0.0.1:6060  # pprof while the run executes
package main

import (
	"flag"
	"fmt"
	"os"

	"dlion/internal/cluster"
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/report"
	"dlion/internal/systems"
)

func main() {
	var (
		sysName = flag.String("system", "dlion", "system: baseline, ako, gaia, hop, dlion, dlion-quant, max10, dlion-no-wu, dlion-no-dbwu")
		envName = flag.String("env", "Homo A", "Table 3 environment name (see -envs)")
		horizon = flag.Float64("horizon", 300, "virtual seconds to simulate")
		scale   = flag.Float64("scale", 0.05, "dataset scale (1.0 = the paper's full size)")
		seed    = flag.Uint64("seed", 7, "experiment seed")
		trace   = flag.Bool("trace", false, "print LBS/gradient-size traces")
		amplify = flag.Float64("amplify", 5, "wire-size amplification (see DESIGN.md)")
		dktp    = flag.Int64("dkt-period", 10, "DLion DKT period in iterations (scaled)")
		quant   = flag.String("quant", "", "wire precision: i8, f16, or auto (empty keeps f32; see WIRE.md)")
		envs    = flag.Bool("envs", false, "list environments and exit")
		repOut  = flag.String("report", "", "write a BENCH JSON run report (METRICS.md schema) to this file")
		dbgAddr = flag.String("debug-addr", "", "serve pprof + expvar on this address while running")
	)
	flag.Parse()

	if *dbgAddr != "" {
		dbg, err := obs.ServeDebug(*dbgAddr, nil)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Println("debug server on", dbg.Addr())
	}

	if *envs {
		for _, n := range env.Names() {
			fmt.Println(n)
		}
		return
	}

	switch {
	case *horizon <= 0:
		fatal(fmt.Errorf("-horizon %g; need > 0 virtual seconds", *horizon))
	case *scale < 0.001 || *scale > 1:
		fatal(fmt.Errorf("-scale %g outside [0.001,1]", *scale))
	case *amplify <= 0:
		fatal(fmt.Errorf("-amplify %g; need > 0", *amplify))
	case *dktp < 1:
		fatal(fmt.Errorf("-dkt-period %d; need >= 1 iteration", *dktp))
	}

	sys, err := systems.ByName(*sysName)
	if err != nil {
		fatal(err)
	}
	if sys, err = systems.WithQuant(sys, *quant); err != nil {
		fatal(err)
	}
	if sys.DKT.Enabled {
		sys.DKT.Period = *dktp
		sys.DKT.Lambda = 1.0
	}
	e, err := env.Get(*envName, *seed)
	if err != nil {
		fatal(err)
	}
	dc := data.CIFAR10Config(*scale, *seed+13)
	model := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	if e.GPU {
		dc = data.ImageNet100Config(*scale/25, *seed+13)
		model = nn.MobileNetLiteSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	}
	model.WireBytes = int(float64(model.WireBytes) * *amplify)

	cfg := cluster.Config{
		System: sys, Model: model, Data: dc,
		N: e.N, Computes: e.Computes, Network: e.Network,
		Horizon: *horizon, Seed: *seed,
	}
	if *trace {
		cfg.TracePeriod = *horizon / 30
	}
	cfg.Observe = *repOut != ""
	fmt.Printf("running %s in %s for %.0f virtual seconds (%s, %d train samples)\n",
		sys.Name, e.Name, *horizon, dc.Name, dc.Train)
	res, err := cluster.Run(cfg)
	if err != nil {
		fatal(err)
	}

	t := report.NewTable("accuracy timeline", "t(s)", "mean acc", "stddev", "loss")
	var ys []float64
	for _, pt := range res.Timeline {
		t.AddRow(fmt.Sprintf("%.0f", pt.T), pt.Mean, fmt.Sprintf("%.3f", pt.Std),
			fmt.Sprintf("%.3f", pt.Loss))
		ys = append(ys, pt.Mean)
	}
	fmt.Println(t)
	fmt.Println("trend:", report.Sparkline(ys))
	fmt.Printf("final accuracy %.3f | iterations per worker %v | %d MB sent\n",
		res.Timeline.FinalMean(), res.Iters, res.TotalBytes>>20)
	if *trace {
		tt := report.NewTable("traces", "t(s)", "GBS", "LBS", "values w0->w1")
		for _, tr := range res.Traces {
			tt.AddRow(fmt.Sprintf("%.0f", tr.T), tr.GBS,
				fmt.Sprint(tr.LBS), tr.SelCount[[2]int{0, 1}])
		}
		fmt.Println(tt)
	}
	if *repOut != "" {
		r := buildReport(res, *sysName, *envName, *horizon, *scale, *amplify, *seed)
		if err := r.WriteFile(*repOut); err != nil {
			fatal(err)
		}
		fmt.Println("run report written to", *repOut)
	}
}

// buildReport assembles the BENCH JSON run report (METRICS.md "sim-run"
// kind) from a finished simulation: per-worker phase breakdown, transport
// counters, accuracy timeline, and headline summary.
func buildReport(res *cluster.Result, sysName, envName string,
	horizon, scale, amplify float64, seed uint64) *obs.Report {
	r := obs.NewReport("sim-run", sysName+"/"+envName)
	r.Config = map[string]any{
		"system": sysName, "env": envName, "horizon": horizon,
		"scale": scale, "amplify": amplify, "seed": seed,
	}
	r.Workers = res.Obs
	var quantSaved int64
	for _, st := range res.Stats {
		quantSaved += st.QuantBytesSaved
	}
	r.Counters = map[string]int64{
		"net.delivered_bytes":    res.TotalBytes,
		"wire.quant_bytes_saved": quantSaved,
		"fault.partition_drops":  res.Faults.Partitioned,
		"fault.loss_drops":       res.Faults.Lost,
		"fault.corrupt_drops":    res.Faults.Corrupted,
		"fault.dead_drops":       res.Faults.DeadDrops,
		"fault.crashes":          res.Faults.Crashes,
		"fault.restarts":         res.Faults.Restarts,
	}
	for _, pt := range res.Timeline {
		r.Timeline = append(r.Timeline, obs.TimelinePoint{
			T: pt.T, MeanAcc: pt.Mean, StdAcc: pt.Std, Loss: pt.Loss})
	}
	var iters int64
	for _, it := range res.Iters {
		iters += it
	}
	r.Summary = map[string]float64{
		"final_acc":       res.Timeline.FinalMean(),
		"best_acc":        res.Timeline.BestMean(),
		"final_deviation": res.Timeline.FinalDeviation(),
		"total_iters":     float64(iters),
		"delivered_mb":    float64(res.TotalBytes) / (1 << 20),
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-sim:", err)
	os.Exit(1)
}
