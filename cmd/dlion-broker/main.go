// Command dlion-broker runs the standalone message broker (the Redis
// substitute) that real-mode DLion workers connect to.
//
// Usage:
//
//	dlion-broker -addr 127.0.0.1:6399
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dlion/internal/obs"
	"dlion/internal/queue"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6399", "listen address")
	dbgAddr := flag.String("debug-addr", "", "serve pprof + expvar on this address (see METRICS.md)")
	flag.Parse()

	b := queue.NewBroker()
	if *dbgAddr != "" {
		reg := obs.NewRegistry()
		b.SetMetrics(reg)
		dbg, err := obs.ServeDebug(*dbgAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlion-broker:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Println("debug server on", dbg.Addr())
	}
	srv, err := queue.Serve(b, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlion-broker:", err)
		os.Exit(1)
	}
	fmt.Println("dlion-broker listening on", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
	b.Close()
}
