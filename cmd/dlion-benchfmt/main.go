// Command dlion-benchfmt converts `go test -bench` output into the BENCH
// JSON report format documented in METRICS.md. It reads the benchmark run
// from stdin, echoes every line so the run stays visible, and writes a
// "kernel-bench" report to -out.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/tensor/... | dlion-benchfmt -out BENCH_kernels.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"dlion/internal/obs"
)

func main() {
	var (
		out  = flag.String("out", "BENCH_kernels.json", "output file for the kernel-bench JSON report")
		name = flag.String("name", "kernels", "report name")
	)
	flag.Parse()

	// Tee stdin: echo to stdout while ParseGoBench scans for benchmark lines.
	pr, pw := io.Pipe()
	done := make(chan struct{})
	var results []obs.BenchResult
	var parseErr error
	go func() {
		defer close(done)
		results, parseErr = obs.ParseGoBench(pr)
	}()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fmt.Fprintln(pw, line)
	}
	pw.Close()
	<-done
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if parseErr != nil {
		fatal(parseErr)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	r := obs.NewReport("kernel-bench", *name)
	r.Benchmarks = results
	if err := r.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-benchfmt:", err)
	os.Exit(1)
}
