// Command dlion-benchfmt converts `go test -bench` output into the BENCH
// JSON report format documented in METRICS.md. It reads the benchmark run
// from stdin, echoes every line so the run stays visible, and writes a
// "kernel-bench" report to -out.
//
// With -baseline it also compares the fresh run against a previously
// committed report, printing per-benchmark deltas (ns/op, allocs/op, MB/s).
// When -regress is set to a positive percentage, any benchmark whose ns/op
// worsens by more than that threshold fails the run with a nonzero exit —
// the perf gate used by `make bench`.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/tensor/... | dlion-benchfmt -out BENCH_kernels.json
//	go test -bench=. -benchmem ./... | dlion-benchfmt -baseline BENCH_kernels.json -regress 20
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"dlion/internal/obs"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_kernels.json", "output file for the kernel-bench JSON report")
		name     = flag.String("name", "kernels", "report name")
		baseline = flag.String("baseline", "", "prior kernel-bench JSON report to diff against (read before -out is overwritten)")
		regress  = flag.Float64("regress", 0, "fail (exit 1) when any benchmark's ns/op worsens by more than this percentage vs -baseline; 0 disables the gate")
	)
	flag.Parse()

	// Load the baseline FIRST: -baseline and -out usually name the same file,
	// and the old numbers must survive being overwritten below.
	var base *obs.Report
	if *baseline != "" {
		var err error
		base, err = obs.ReadFile(*baseline)
		if err != nil {
			// A missing or unreadable baseline is not an error: first runs and
			// fresh clones have nothing to compare against yet.
			fmt.Fprintf(os.Stderr, "dlion-benchfmt: no usable baseline (%v); skipping comparison\n", err)
			base = nil
		}
	}

	// Tee stdin: echo to stdout while ParseGoBench scans for benchmark lines.
	pr, pw := io.Pipe()
	done := make(chan struct{})
	var results []obs.BenchResult
	var parseErr error
	go func() {
		defer close(done)
		results, parseErr = obs.ParseGoBench(pr)
	}()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fmt.Fprintln(pw, line)
	}
	pw.Close()
	<-done
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if parseErr != nil {
		fatal(parseErr)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	r := obs.NewReport("kernel-bench", *name)
	r.Benchmarks = results
	if err := r.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), *out)

	if base != nil {
		if !compare(base, results, *regress) {
			fmt.Fprintf(os.Stderr, "dlion-benchfmt: ns/op regression beyond %.1f%% vs %s\n", *regress, *baseline)
			os.Exit(1)
		}
	}
}

// compare prints a per-benchmark delta table against the baseline report and
// reports whether the run stays within the regression threshold (regressPct
// <= 0 disables the gate). Positive deltas mean slower / more allocations.
func compare(base *obs.Report, results []obs.BenchResult, regressPct float64) bool {
	old := make(map[string]obs.BenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Printf("\ndelta vs baseline %q:\n", base.Name)
	fmt.Printf("  %-34s %14s %14s %9s %12s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs/op", "ΔMB/s")
	ok := true
	for _, b := range results {
		o, found := old[b.Name]
		if !found {
			fmt.Printf("  %-34s %14s %14.0f %9s (new benchmark)\n", b.Name, "-", b.NsPerOp, "-")
			continue
		}
		delete(old, b.Name)
		dns := pctDelta(o.NsPerOp, b.NsPerOp)
		fmt.Printf("  %-34s %14.0f %14.0f %8.1f%% %11s %9s\n",
			b.Name, o.NsPerOp, b.NsPerOp, dns,
			fmtDelta(o.AllocsPerOp, b.AllocsPerOp), fmtDelta(o.MBPerSec, b.MBPerSec))
		if regressPct > 0 && dns > regressPct {
			ok = false
		}
	}
	for n := range old {
		fmt.Printf("  %-34s missing from this run (present in baseline)\n", n)
	}
	return ok
}

// pctDelta returns the percentage change from old to new (positive = grew).
func pctDelta(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - old) / old * 100
}

// fmtDelta renders an optional metric delta, "-" when neither side has it.
func fmtDelta(old, cur float64) string {
	if old == 0 && cur == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pctDelta(old, cur))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-benchfmt:", err)
	os.Exit(1)
}
