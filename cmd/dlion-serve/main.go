// Command dlion-serve answers inference requests from the cluster's
// freshest model. It builds the same model architecture the workers train
// (same -scale and -seed), loads versions from either a checkpoint
// directory or a broker's weight broadcasts, and serves HTTP /predict with
// dynamic micro-batching: concurrent requests coalesce into one forward
// pass, overload sheds with 429 instead of queueing unboundedly.
//
// Feeding it:
//
//	dlion-serve -addr :8080 -broker 127.0.0.1:6399     # live hot-swaps from workers
//	dlion-worker -id 0 ... -serve-publish 5s           # workers broadcast checkpoints
//
// or, file-based:
//
//	dlion-serve -addr :8080 -ckpt-dir /var/dlion/ckpt  # newest *.ckpt wins
//
// Endpoints: POST /predict, GET /healthz /modelz /statsz.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/queue"
	"dlion/internal/serve"
	"dlion/internal/tensor"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		scale    = flag.Float64("scale", 0.02, "dataset scale (must match the workers')")
		seed     = flag.Uint64("seed", 7, "shared cluster seed (must match the workers')")
		ckptDir  = flag.String("ckpt-dir", "", "watch this directory for *.ckpt files")
		watchInt = flag.Duration("watch-interval", 500*time.Millisecond, "checkpoint directory poll interval")
		broker   = flag.String("broker", "", "subscribe to weight broadcasts from this broker")
		initCkpt = flag.String("init-ckpt", "", "checkpoint file to serve before the first update arrives")
		maxBatch = flag.Int("max-batch", 16, "max requests coalesced into one forward pass")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "max wait to fill a batch")
		qDepth   = flag.Int("queue", 256, "admission queue depth; beyond it requests shed with 429")
		runners  = flag.Int("runners", 1, "concurrent batch runners (each holds a model replica)")
		int8Mode = flag.Bool("int8", false, "serve int8-quantized replicas (repacked on every version swap)")
		dbgAddr  = flag.String("debug-addr", "", "serve pprof + expvar on this address (see METRICS.md)")
	)
	flag.Parse()

	if (*ckptDir == "") == (*broker == "") {
		fatal(fmt.Errorf("set exactly one of -ckpt-dir or -broker (their version clocks differ; see internal/serve)"))
	}
	switch {
	case *scale < 0.001 || *scale > 1:
		fatal(fmt.Errorf("-scale %g outside [0.001,1]", *scale))
	case *maxBatch < 1:
		fatal(fmt.Errorf("-max-batch %d; need >= 1", *maxBatch))
	case *qDepth < 1:
		fatal(fmt.Errorf("-queue %d; need >= 1", *qDepth))
	case *runners < 1:
		fatal(fmt.Errorf("-runners %d; need >= 1", *runners))
	case *watchInt <= 0:
		fatal(fmt.Errorf("-watch-interval %v; need > 0", *watchInt))
	}

	// Identical spec derivation to dlion-worker: same scale and seed give
	// the same architecture, so worker checkpoints restore here.
	dc := data.CIFAR10Config(*scale, *seed+13)
	spec := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, *seed+1000)
	reg := serve.NewRegistry(spec)

	if *initCkpt != "" {
		ckpt, err := os.ReadFile(*initCkpt)
		if err != nil {
			fatal(err)
		}
		if err := reg.Publish(0, "init:"+*initCkpt, ckpt); err != nil {
			fatal(fmt.Errorf("init checkpoint: %w", err))
		}
	}

	metrics := obs.NewRegistry()
	if *dbgAddr != "" {
		dbg, err := obs.ServeDebug(*dbgAddr, metrics)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Println("debug server on", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *ckptDir != "":
		go reg.WatchDir(ctx, *ckptDir, *watchInt)
		fmt.Printf("watching %s every %v\n", *ckptDir, *watchInt)
	case *broker != "":
		c := queue.DialReconnecting(*broker, queue.ReconnectConfig{})
		defer c.Close()
		c.SetMetrics(metrics)
		ch, err := c.Subscribe(serve.WeightsChannel, 64)
		if err != nil {
			fatal(err)
		}
		go reg.WatchBroadcasts(ctx, ch)
		fmt.Printf("subscribed to %s on %s\n", serve.WeightsChannel, *broker)
	}

	if *int8Mode {
		tensor.AttachQuantMetrics(metrics)
	}
	srv, err := serve.Listen(serve.Config{
		Registry: reg, Metrics: metrics,
		MaxBatch: *maxBatch, MaxDelay: *maxDelay,
		QueueDepth: *qDepth, Runners: *runners,
		Quantized: *int8Mode,
	}, *addr)
	if err != nil {
		fatal(err)
	}
	mode := "f32"
	if *int8Mode {
		mode = "int8"
	}
	fmt.Printf("serving on %s (batch<=%d, delay<=%v, queue %d, %s)\n",
		srv.Addr(), *maxBatch, *maxDelay, *qDepth, mode)

	<-ctx.Done()
	stop() // a second signal now kills the process the default way

	// Graceful shutdown: stop admitting, finish every in-flight batch, then
	// close the listener. The deadline only bounds a stuck drain.
	fmt.Println("shutting down: draining in-flight requests")
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		fatal(err)
	}
	if v := reg.Current(); v != nil {
		fmt.Printf("done: final model seq %d from %s, %d swaps\n", v.Seq, v.Source, reg.Swaps())
	} else {
		fmt.Println("done: no model version was ever published")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-serve:", err)
	os.Exit(1)
}
