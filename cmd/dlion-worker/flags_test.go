package main

import (
	"strings"
	"testing"
)

// good returns a valid flag set to mutate per case.
func good() workerFlags {
	return workerFlags{ID: 0, Workers: 2, Broker: "127.0.0.1:6399",
		System: "dlion", Scale: 0.02}
}

func TestWorkerFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*workerFlags)
		wantErr string // substring of the error; "" = must pass
	}{
		{"defaults pass", func(f *workerFlags) {}, ""},
		{"empty broker", func(f *workerFlags) { f.Broker = "" }, "-broker is empty"},
		{"zero workers", func(f *workerFlags) { f.Workers = 0 }, "-workers"},
		{"negative id", func(f *workerFlags) { f.ID = -1 }, "-id"},
		{"id past cluster", func(f *workerFlags) { f.ID = 2 }, "-id"},
		{"negative quorum", func(f *workerFlags) { f.Quorum = -1 }, "-quorum"},
		{"negative founders", func(f *workerFlags) { f.Founders = -3 }, "-founders"},
		{"founders past cluster", func(f *workerFlags) { f.Founders = 5 }, "-founders"},
		{"join plus founders", func(f *workerFlags) { f.Join = true; f.Sponsor = 1; f.Founders = 1 },
			"mutually exclusive"},
		{"join with out-of-range sponsor", func(f *workerFlags) { f.Join = true; f.Sponsor = 9 },
			"-sponsor"},
		{"join sponsoring itself", func(f *workerFlags) { f.ID = 1; f.Join = true; f.Sponsor = 1 },
			"-sponsor"},
		{"valid join", func(f *workerFlags) { f.ID = 1; f.Join = true; f.Sponsor = 0 }, ""},
		{"scale too small", func(f *workerFlags) { f.Scale = 0.0001 }, "-scale"},
		{"scale too big", func(f *workerFlags) { f.Scale = 2 }, "-scale"},
		{"unknown system", func(f *workerFlags) { f.System = "nope" }, "unknown system"},
		{"invalid quant", func(f *workerFlags) { f.Quant = "i4" }, "quant"},
		{"valid quant", func(f *workerFlags) { f.Quant = "i8" }, ""},
		{"bad job id", func(f *workerFlags) { f.Job = "has spaces" }, "-job"},
		{"valid job id", func(f *workerFlags) { f.Job = "job-3" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := good()
			tc.mutate(&f)
			_, err := f.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error %q is not one line", err)
			}
		})
	}
}

func TestWorkerFlagNamespace(t *testing.T) {
	f := good()
	if ns := f.namespace(); ns != "" {
		t.Errorf("root namespace = %q, want empty", ns)
	}
	f.Job = "job-7"
	if got := f.namespace().DataKey(3); got != "dlion:job:job-7:data:3" {
		t.Errorf("job data key = %q", got)
	}
}

func TestWorkerFlagJobLabel(t *testing.T) {
	f := good()
	f.Job = "job-7"
	sys, err := f.validate()
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if sys.Job != "job-7" || !strings.HasSuffix(sys.Name, "@job-7") {
		t.Errorf("config Job=%q Name=%q, want job label applied", sys.Job, sys.Name)
	}
}
