package main

import (
	"fmt"

	"dlion/internal/core"
	"dlion/internal/queue"
	"dlion/internal/systems"
)

// workerFlags collects every dlion-worker flag that needs validation, so
// the checks are one testable unit instead of scattered in main.
type workerFlags struct {
	ID       int
	Workers  int
	Broker   string
	System   string
	Quant    string
	Job      string
	Scale    float64
	Join     bool
	Sponsor  int
	Founders int
	Quorum   int
}

// validate rejects malformed flag combinations with one-line errors, and on
// success returns the resolved system config (preset + quant + job label).
func (f workerFlags) validate() (core.Config, error) {
	switch {
	case f.Broker == "":
		return core.Config{}, fmt.Errorf("-broker is empty; give the broker address")
	case f.Workers < 1:
		return core.Config{}, fmt.Errorf("-workers %d; need at least 1", f.Workers)
	case f.ID < 0 || f.ID >= f.Workers:
		return core.Config{}, fmt.Errorf("-id %d outside [0,%d)", f.ID, f.Workers)
	case f.Quorum < 0:
		return core.Config{}, fmt.Errorf("-quorum %d is negative", f.Quorum)
	case f.Founders < 0:
		return core.Config{}, fmt.Errorf("-founders %d is negative", f.Founders)
	case f.Founders > f.Workers:
		return core.Config{}, fmt.Errorf("-founders %d exceeds -workers %d", f.Founders, f.Workers)
	case f.Join && f.Founders > 0:
		return core.Config{}, fmt.Errorf("-join and -founders are mutually exclusive (a joiner is not a founder)")
	case f.Join && (f.Sponsor < 0 || f.Sponsor >= f.Workers):
		return core.Config{}, fmt.Errorf("-sponsor %d outside [0,%d)", f.Sponsor, f.Workers)
	case f.Join && f.Sponsor == f.ID:
		return core.Config{}, fmt.Errorf("-sponsor %d is this worker; name a running member", f.Sponsor)
	case f.Scale < 0.001 || f.Scale > 1:
		return core.Config{}, fmt.Errorf("-scale %g outside [0.001,1]", f.Scale)
	case f.Job != "" && !queue.ValidJobID(f.Job):
		return core.Config{}, fmt.Errorf("-job %q is not a valid job id", f.Job)
	}
	// Resolve the preset, precision, and job label in one step so a typo in
	// -system or -quant is caught before any network traffic.
	sys, err := systems.ForJob(f.System, f.Quant, f.Job, 0)
	if err != nil {
		return core.Config{}, err
	}
	return sys, nil
}

// namespace returns the broker key namespace this worker's traffic lives
// in: the root namespace for hand-launched clusters, or the job's own
// namespace when attaching to a control-plane job with -job.
func (f workerFlags) namespace() queue.Namespace {
	if f.Job == "" {
		return queue.Namespace("")
	}
	return queue.JobNamespace(f.Job)
}
