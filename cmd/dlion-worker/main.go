// Command dlion-worker runs one real-mode DLion worker process, connecting
// to a dlion-broker for message exchange. Start one broker and n workers
// (each with a distinct -id) to form a training cluster; every worker must
// use the same -workers, -seed and -system so replicas and shards agree.
//
// Example (three shells):
//
//	dlion-broker -addr 127.0.0.1:6399
//	dlion-worker -id 0 -workers 2 -broker 127.0.0.1:6399 -duration 30s
//	dlion-worker -id 1 -workers 2 -broker 127.0.0.1:6399 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlion/internal/data"
	"dlion/internal/lineage"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/realtime"
	"dlion/internal/serve"
)

func main() {
	var (
		id       = flag.Int("id", 0, "worker id in [0, workers)")
		n        = flag.Int("workers", 2, "cluster size")
		broker   = flag.String("broker", "127.0.0.1:6399", "broker address")
		sysName  = flag.String("system", "dlion", "system preset")
		quant    = flag.String("quant", "", "wire precision: i8, f16, or auto (empty keeps f32; see WIRE.md)")
		seed     = flag.Uint64("seed", 7, "shared cluster seed")
		scale    = flag.Float64("scale", 0.02, "dataset scale")
		duration = flag.Duration("duration", 30*time.Second, "training duration")
		dbgAddr  = flag.String("debug-addr", "", "serve pprof + expvar on this address (see METRICS.md)")
		servePub = flag.Duration("serve-publish", 0, "broadcast model checkpoints for dlion-serve at this interval (0 disables)")
		join     = flag.Bool("join", false, "join a running federation instead of founding it (see DESIGN.md §10)")
		sponsor  = flag.Int("sponsor", 0, "member to request admission from when -join is set")
		founders = flag.Int("founders", 0, "founding roster is ids [0,founders); 0 means all -workers slots found the cluster")
		quorum   = flag.Int("quorum", 0, "mark iterations degraded when the live cluster shrinks below this size (0 disables)")
		job      = flag.String("job", "", "attach to this control-plane job's channel namespace (usually with -join; see DESIGN.md §12)")
	)
	flag.Parse()

	wf := workerFlags{ID: *id, Workers: *n, Broker: *broker, System: *sysName,
		Quant: *quant, Job: *job, Scale: *scale, Join: *join, Sponsor: *sponsor,
		Founders: *founders, Quorum: *quorum}
	sys, err := wf.validate()
	if err != nil {
		fatal(err)
	}
	if sys.DKT.Enabled {
		sys.DKT.Period = 20
	}
	sys.Membership.QuorumFloor = *quorum
	switch {
	case *join:
		// this process starts outside the federation and asks -sponsor in
		sys.Membership.Join = true
		sys.Membership.Sponsor = *sponsor
	case *founders > 0:
		// a founder of an elastic cluster: the initial roster is smaller
		// than the -workers address space, leaving slots for joiners
		if *id >= *founders {
			fatal(fmt.Errorf("id %d is not a founder (founders are [0,%d)); pass -join", *id, *founders))
		}
		roster := make([]int, *founders)
		for i := range roster {
			roster[i] = i
		}
		sys.Membership.InitialMembers = roster
	}

	dc := data.CIFAR10Config(*scale, *seed+13)
	train, _, err := data.Generate(dc)
	if err != nil {
		fatal(err)
	}
	shards, err := data.Partition(train, *n, *seed)
	if err != nil {
		fatal(err)
	}
	spec := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, *seed+1000)

	tr, err := realtime.NewClientTransportNS(*broker, *id, wf.namespace())
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	// Observability: with -debug-addr set the worker traces its phase
	// breakdown and counters and serves them on /debug/vars next to pprof.
	var (
		sink *obs.WorkerObs
		reg  *obs.Registry
	)
	if *dbgAddr != "" {
		sink = obs.NewWorkerObs()
		reg = obs.NewRegistry()
		tr.SetMetrics(reg)
		dbg, err := obs.ServeDebug(*dbgAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		workerID := *id
		obs.Publish("dlion.worker", func() any { return sink.Snapshot(workerID) })
		sink.SetJoinHistogram(reg.Histogram("membership.join_latency"))
		fmt.Println("debug server on", dbg.Addr())
	}

	node, err := realtime.NewNode(realtime.Config{
		ID: *id, N: *n, System: sys, Spec: spec, Shard: shards[*id], Transport: tr,
		Obs: sink, Metrics: reg,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("worker %d/%d (%s) training for %v via %s\n", *id, *n, sys.Name, *duration, *broker)
	// SIGINT/SIGTERM trigger a graceful LEAVE, not just a stop: the worker
	// drains its queued sends, broadcasts membership tombstones so peers
	// renormalize immediately instead of waiting out the liveness lease,
	// and only then shuts its loop down (DESIGN.md §10).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	// With -serve-publish set, the worker periodically snapshots its model
	// on the event loop and broadcasts it on the serving weights channel;
	// any dlion-serve subscribed to the same broker hot-swaps to it. Each
	// broadcast carries a lineage manifest chained to this process's prior
	// snapshot, so the serving tier's /modelz chain records real provenance.
	if *servePub > 0 {
		go func() {
			tick := time.NewTicker(*servePub)
			defer tick.Stop()
			var parent *lineage.Manifest
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					iter, ckpt, man, err := node.CheckpointManifest(ctx, parent)
					if err != nil || iter == 0 {
						continue // stopping, or nothing trained yet
					}
					frame, err := serve.EncodeUpdateManifest(iter, man, ckpt)
					if err != nil {
						fmt.Fprintln(os.Stderr, "dlion-worker: serve publish:", err)
						continue
					}
					if err := tr.Publish(serve.WeightsChannel, frame); err != nil {
						fmt.Fprintln(os.Stderr, "dlion-worker: serve publish:", err)
						continue
					}
					if parent == nil || man.Iter > parent.Iter {
						parent = man
					}
				}
			}
		}()
	}
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s := node.Worker().Stats()
				fmt.Printf("  iter=%d loss=%.3f sent=%dKB\n",
					s.Iters, node.Worker().AvgRecentLoss(), s.BytesSent>>10)
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		select {
		case <-sigCtx.Done():
			fmt.Println("signal: leaving the federation")
			lctx, lcancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := node.Leave(lctx, 5*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "dlion-worker: leave:", err)
			}
			lcancel()
			cancel() // tombstones are out (or timed out): stop the loop
		case <-ctx.Done():
			// normal duration expiry: Run returns and FlushSends below drains
		}
	}()
	if err := node.Run(ctx); err != nil {
		fatal(err)
	}
	// Graceful drain: give the per-peer FIFOs a moment to hand their last
	// frames to the broker before the deferred transport close cuts them off.
	if !node.FlushSends(2 * time.Second) {
		fmt.Fprintln(os.Stderr, "dlion-worker: send queues did not fully drain")
	}
	s := node.Worker().Stats()
	fmt.Printf("done: %d iterations, %d samples, final loss %.3f\n",
		s.Iters, s.SamplesProcessed, node.Worker().AvgRecentLoss())
	w := node.Worker()
	fmt.Printf("membership: state=%s epoch=%d roster=%d degraded_iters=%d\n",
		w.State(), w.Epoch(), len(w.Members()), s.DegradedIters)
	if sink != nil {
		w := sink.Snapshot(*id)
		fmt.Printf("phases: compute %.2fs serialize %.2fs send %.2fs recv-wait %.2fs apply %.2fs\n",
			w.Phases["compute"], w.Phases["serialize"], w.Phases["send"],
			w.Phases["recv_wait"], w.Phases["apply"])
		fmt.Printf("bytes: gradient %d/%d weights %d/%d control %d/%d (sent/recvd)\n",
			w.SentBytes["gradient"], w.RecvBytes["gradient"],
			w.SentBytes["weights"], w.RecvBytes["weights"],
			w.SentBytes["control"], w.RecvBytes["control"])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-worker:", err)
	os.Exit(1)
}
