// Command dlion-ctl is the control-plane client: it submits, lists,
// inspects, and halts training jobs against a dlion-controller's REST API.
//
// Usage:
//
//	dlion-ctl [-api http://127.0.0.1:8081] <command> [args]
//
//	submit  -system <preset> -workers N -max-iters N [...]  submit a job
//	list                                                    all jobs
//	get     <job-id>                                        one job record
//	metrics <job-id>                                        folded obs + accuracy
//	halt    <job-id>                                        stop a job
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"dlion/internal/jobs"
)

func main() {
	api := flag.String("api", "http://127.0.0.1:8081", "controller API base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	base := strings.TrimRight(*api, "/")
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(base, args)
	case "list":
		err = cmdList(base)
	case "get":
		err = cmdOne(base, args, "")
	case "metrics":
		err = cmdOne(base, args, "/metrics")
	case "halt":
		err = cmdHalt(base, args)
	default:
		fmt.Fprintf(os.Stderr, "dlion-ctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlion-ctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlion-ctl [-api URL] {submit|list|get|metrics|halt} [args]")
	fmt.Fprintln(os.Stderr, "  submit -system <preset> -workers N -max-iters N [-quant M] [-tenant T] [-slots N] [-scale F] [-seed N] [-lbs N] [-name S]")
	fmt.Fprintln(os.Stderr, "  get|metrics|halt <job-id>")
}

func cmdSubmit(base string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var spec jobs.Spec
	fs.StringVar(&spec.Name, "name", "", "human label")
	fs.StringVar(&spec.Tenant, "tenant", "", "quota bucket (default: default)")
	fs.StringVar(&spec.System, "system", "dlion", "system preset (baseline, ako, gaia, hop, dlion, ...)")
	fs.StringVar(&spec.Quant, "quant", "", "wire precision: i8, f16, auto")
	fs.IntVar(&spec.Workers, "workers", 2, "worker group size")
	fs.IntVar(&spec.Slots, "slots", 0, "address space incl. joiner slots (0 = workers)")
	fs.Int64Var(&spec.MaxIters, "max-iters", 100, "per-worker iteration budget")
	fs.Float64Var(&spec.Scale, "scale", 0, "dataset scale (0 = default)")
	fs.Uint64Var(&spec.Seed, "seed", 0, "cluster seed (0 = default)")
	fs.IntVar(&spec.LBS, "lbs", 0, "initial local batch size (0 = preset's)")
	fs.Parse(args)
	raw, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return printResponse(resp)
}

func cmdList(base string) error {
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		return err
	}
	return printResponse(resp)
}

func cmdOne(base string, args []string, suffix string) error {
	if len(args) != 1 {
		return fmt.Errorf("need exactly one job id")
	}
	resp, err := http.Get(base + "/v1/jobs/" + args[0] + suffix)
	if err != nil {
		return err
	}
	return printResponse(resp)
}

func cmdHalt(base string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("need exactly one job id")
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+args[0], nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return printResponse(resp)
}

// printResponse relays the API's JSON to stdout; non-2xx responses (the
// structured error envelope) become a non-zero exit via the returned error.
func printResponse(resp *http.Response) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %s", resp.Status)
	}
	return nil
}
