// Command dlion-controller runs the multi-job training control plane: an
// in-process broker (optionally exposed over TCP for external workers), the
// job lifecycle manager, and the REST/JSON job API.
//
// Usage:
//
//	dlion-controller -api 127.0.0.1:8081 -broker-addr 127.0.0.1:6399
//	dlion-ctl -api http://127.0.0.1:8081 submit -system dlion -workers 4 -max-iters 200
//
// With -broker-addr set, external dlion-worker processes can attach to a
// running job's channel namespace (-job <id> -join); see DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlion/internal/jobs"
	"dlion/internal/obs"
	"dlion/internal/queue"
)

func main() {
	var (
		api        = flag.String("api", "127.0.0.1:8081", "REST job API listen address")
		brokerAddr = flag.String("broker-addr", "", "also expose the broker over TCP on this address (for external -job workers)")
		store      = flag.String("store", "", "persist job records to this JSON file (empty = memory only)")
		maxConc    = flag.Int("max-concurrent", 2, "jobs training at once; the rest queue")
		queueDepth = flag.Int("queue-depth", 8, "admitted-but-waiting jobs before submissions get 429s")
		quota      = flag.Int("tenant-quota", 4, "non-terminal jobs allowed per tenant")
		restarts   = flag.Int("max-restarts", 2, "per-job checkpoint-restore restarts before the job fails")
		liveness   = flag.Float64("liveness", 2, "seconds a silent peer is routed around (crash recovery)")
		dbgAddr    = flag.String("debug-addr", "", "serve pprof + expvar on this address (see METRICS.md)")
	)
	flag.Parse()

	b := queue.NewBroker()
	defer b.Close()
	reg := obs.NewRegistry()
	b.SetMetrics(reg)

	if *dbgAddr != "" {
		dbg, err := obs.ServeDebug(*dbgAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Println("debug server on", dbg.Addr())
	}
	if *brokerAddr != "" {
		srv, err := queue.Serve(b, *brokerAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Println("broker listening on", srv.Addr())
	}

	st, err := jobs.NewStore(*store)
	if err != nil {
		fatal(err)
	}
	m, err := jobs.NewManager(jobs.Config{
		Broker:          b,
		Store:           st,
		Metrics:         reg,
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		TenantQuota:     *quota,
		MaxRestarts:     *restarts,
		LivenessTimeout: *liveness,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *api)
	if err != nil {
		fatal(err)
	}
	fmt.Println("job API listening on", ln.Addr())
	go func() {
		if err := jobs.NewAPI(m).Serve(ln); err != nil {
			// Closing the listener on shutdown surfaces here; nothing to do.
			_ = err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down: halting active jobs")
	ln.Close()
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "dlion-controller: shutdown timed out")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlion-controller:", err)
	os.Exit(1)
}
