// Command dlion-bench regenerates the paper's tables and figures on the
// simulated micro-clouds and prints them as text, optionally writing a
// combined report suitable for EXPERIMENTS.md.
//
// Usage:
//
//	dlion-bench                 # run every experiment with the fast profile
//	dlion-bench -exp fig11      # run one experiment
//	dlion-bench -profile std    # paper-style 3-run averaging, longer horizon
//	dlion-bench -list           # list experiment ids
//	dlion-bench -out report.md  # also write a markdown report
//	dlion-bench -json bench.json  # also write a BENCH JSON report (METRICS.md)
//	dlion-bench -serve          # serving load benchmark -> BENCH_serve.json
//	dlion-bench -sim -sim-n 128 -cpuprofile sim.pprof
//	                            # DES throughput workloads, profiled
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dlion/internal/experiments"
	"dlion/internal/obs"
)

func main() {
	var (
		expID   = flag.String("exp", "", "run a single experiment id (default: all)")
		profile = flag.String("profile", "fast", "profile: fast or std")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		out     = flag.String("out", "", "also write a markdown report to this file")
		jsonOut = flag.String("json", "", "also write a BENCH JSON report (METRICS.md schema) to this file")
		dbgAddr = flag.String("debug-addr", "", "serve pprof + expvar on this address while running")
		srvMode = flag.Bool("serve", false, "run the serving load benchmark instead of the experiments")
		simMode = flag.Bool("sim", false, "run the DES throughput workloads instead of the experiments")
	)
	flag.Parse()

	if *srvMode {
		if err := runServeBench(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dlion-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *simMode {
		if err := runSimBench(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dlion-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *dbgAddr != "" {
		dbg, err := obs.ServeDebug(*dbgAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlion-bench:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Println("debug server on", dbg.Addr())
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	var p experiments.Profile
	switch *profile {
	case "fast":
		p = experiments.Fast()
	case "std", "standard":
		p = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want fast or std)\n", *profile)
		os.Exit(2)
	}

	var todo []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	} else {
		todo = experiments.All()
	}

	var md strings.Builder
	md.WriteString("# DLion reproduction report\n\n")
	fmt.Fprintf(&md, "Profile: %s, data scale %.3g, horizon %.0f virtual s, %d run(s) per point.\n\n",
		*profile, p.DataScale, p.Horizon, p.Runs)

	jr := obs.NewReport("experiments", "dlion-bench/"+*profile)
	jr.Config = map[string]any{
		"profile": *profile, "data_scale": p.DataScale,
		"horizon": p.Horizon, "runs": p.Runs,
	}

	failed := 0
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		o, err := e.Run(p)
		if err != nil {
			failed++
			fmt.Printf("ERROR: %v\n\n", err)
			fmt.Fprintf(&md, "## %s — %s\n\nERROR: %v\n\n", e.ID, e.Title, err)
			jr.Experiments = append(jr.Experiments, obs.ExperimentReport{
				ID: e.ID, Title: e.Title, Notes: []string{"ERROR: " + err.Error()}})
			continue
		}
		jr.Experiments = append(jr.Experiments, obs.ExperimentReport{
			ID: e.ID, Title: e.Title, Values: o.Values, Notes: o.Notes})
		fmt.Println(o.Text)
		for _, note := range o.Notes {
			fmt.Println("note:", note)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		fmt.Fprintf(&md, "## %s — %s\n\n```\n%s```\n", e.ID, e.Title, o.Text)
		for _, note := range o.Notes {
			fmt.Fprintf(&md, "- %s\n", note)
		}
		md.WriteString("\n")
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write report:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *out)
	}
	if *jsonOut != "" {
		if err := jr.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "write json report:", err)
			os.Exit(1)
		}
		fmt.Println("json report written to", *jsonOut)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
