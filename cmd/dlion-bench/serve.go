package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"dlion/internal/data"
	"dlion/internal/nn"
	"dlion/internal/obs"
	"dlion/internal/serve"
)

// Serving benchmark flags (active with -serve).
var (
	serveDur   = flag.Duration("serve-duration", 2*time.Second, "load duration per serving config")
	serveConc  = flag.Int("serve-concurrency", 32, "closed-loop clients per serving config")
	serveBatch = flag.Int("serve-max-batch", 32, "max batch for the batched config")
)

// runServeBench measures the serving subsystem: batch=1 vs dynamic
// micro-batching under the same offered load, plus an overload config at
// ~2x the queue's capacity to exercise shedding. Results land in a
// BENCH JSON report (kind "serve-bench"); the batched config must beat
// batch=1 on throughput and the overload config must shed, or the run
// fails — these are the acceptance bars, not just numbers.
func runServeBench(jsonPath string) error {
	if jsonPath == "" {
		jsonPath = "BENCH_serve.json"
	}
	dc := data.CIFAR10Config(0.02, 20)
	spec := nn.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 1020)
	ckpt := spec.Build().Checkpoint()
	input := make([]float32, dc.Channels*dc.Height*dc.Width)
	for i := range input {
		input[i] = float32(i%23) / 23
	}

	type benchCase struct {
		name string
		cfg  serve.Config
		conc int
	}
	cases := []benchCase{
		{"batch1", serve.Config{MaxBatch: 1, MaxDelay: 0, QueueDepth: 4096}, *serveConc},
		{"batched", serve.Config{MaxBatch: *serveBatch, MaxDelay: 2 * time.Millisecond, QueueDepth: 4096}, *serveConc},
		// Same shape as "batched" but on int8 replicas: the headline
		// quantized-inference number (must not fall below the f32 baseline).
		{"int8", serve.Config{MaxBatch: *serveBatch, MaxDelay: 2 * time.Millisecond, QueueDepth: 4096, Quantized: true}, *serveConc},
		// Overload: far more clients than the queue holds, with small
		// batches so the runner cannot drain the queue in one gulp —
		// admission control has to shed.
		{"overload", serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueDepth: 8}, 4 * *serveConc},
	}

	jr := obs.NewReport("serve-bench", "dlion-bench/serve")
	jr.Config = map[string]any{
		"duration": serveDur.String(), "concurrency": *serveConc,
		"max_batch": *serveBatch, "model": spec.Kind,
		"input_dims": fmt.Sprintf("%dx%dx%d", dc.Channels, dc.Height, dc.Width),
	}
	jr.Histograms = map[string]obs.HistogramSummary{}

	// Each config runs twice, interleaved, keeping the higher-QPS run: on a
	// shared box a single sample is hostage to whatever else the scheduler
	// is doing, and best-of-n is the usual antidote.
	const runsPerCase = 2
	results := map[string]serve.LoadResult{}
	histories := map[string]*obs.Registry{}
	for round := 0; round < runsPerCase; round++ {
		for _, bc := range cases {
			reg := serve.NewRegistry(spec)
			if err := reg.Publish(1, "bench", ckpt); err != nil {
				return err
			}
			metrics := obs.NewRegistry()
			bc.cfg.Registry, bc.cfg.Metrics = reg, metrics
			srv, err := serve.Listen(bc.cfg, "127.0.0.1:0")
			if err != nil {
				return err
			}
			res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
				URL: srv.URL(), Concurrency: bc.conc, Duration: *serveDur, Input: input,
			})
			srv.Close()
			if err != nil {
				return err
			}
			if best, seen := results[bc.name]; !seen || res.QPS > best.QPS {
				results[bc.name] = res
				histories[bc.name] = metrics
			}
		}
	}
	for _, bc := range cases {
		res, metrics := results[bc.name], histories[bc.name]
		fmt.Printf("%-9s qps=%8.0f  ok=%-6d shed=%-6d p50=%6.2fms p95=%6.2fms p99=%6.2fms\n",
			bc.name, res.QPS, res.OK, res.Shed,
			res.Latency.P50*1e3, res.Latency.P95*1e3, res.Latency.P99*1e3)

		jr.Experiments = append(jr.Experiments, obs.ExperimentReport{
			ID:    bc.name,
			Title: fmt.Sprintf("max_batch=%d queue=%d clients=%d", bc.cfg.MaxBatch, bc.cfg.QueueDepth, bc.conc),
			Values: map[string]float64{
				"qps": res.QPS, "sent": float64(res.Sent), "ok": float64(res.OK),
				"shed": float64(res.Shed), "failed": float64(res.Failed),
				"p50_ms": res.Latency.P50 * 1e3, "p95_ms": res.Latency.P95 * 1e3,
				"p99_ms": res.Latency.P99 * 1e3,
			},
		})
		// Server-side distributions, prefixed per config.
		for name, h := range metrics.HistogramSummaries() {
			jr.Histograms[bc.name+"."+name] = h
		}
		jr.Histograms[bc.name+".client.latency"] = res.Latency
	}

	single, batched, over := results["batch1"], results["batched"], results["overload"]
	int8 := results["int8"]
	jr.Summary = map[string]float64{
		"batch1_qps":     single.QPS,
		"batched_qps":    batched.QPS,
		"batch_speedup":  batched.QPS / single.QPS,
		"int8_qps":       int8.QPS,
		"int8_speedup":   int8.QPS / batched.QPS,
		"overload_shed":  float64(over.Shed),
		"overload_p99_s": over.Latency.P99,
	}
	if err := jr.WriteFile(jsonPath); err != nil {
		return err
	}
	fmt.Println("json report written to", jsonPath)

	if batched.QPS <= single.QPS {
		return fmt.Errorf("batched qps %.0f not above batch=1 qps %.0f", batched.QPS, single.QPS)
	}
	if over.Shed == 0 {
		return fmt.Errorf("overload config shed nothing: admission control not engaging")
	}
	if over.Failed > 0 {
		return fmt.Errorf("%d hard failures under overload", over.Failed)
	}
	if int8.QPS < batched.QPS {
		return fmt.Errorf("int8 qps %.0f below f32 batched qps %.0f", int8.QPS, batched.QPS)
	}
	fmt.Printf("micro-batching speedup: %.2fx; int8 speedup: %.2fx; overload shed %d of %d\n",
		batched.QPS/single.QPS, int8.QPS/batched.QPS, over.Shed, over.Sent)
	return nil
}
