package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dlion/internal/cluster"
	"dlion/internal/obs"
)

// DES throughput flags (active with -sim).
var (
	simSizes = flag.String("sim-n", "32,128", "comma-separated worker counts; sizes >= 256 run as 4-cloud federations")
	simChurn = flag.Bool("sim-churn", false, "add the join/leave churn schedule (flat-mesh sizes only)")
	simRuns  = flag.Int("sim-runs", 1, "runs per size (throughput is averaged)")
	cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
	memProf  = flag.String("memprofile", "", "write a post-run heap profile to this file")
)

// runSimBench drives the canonical DES throughput workloads
// (cluster.SimEventsConfig / cluster.FederationConfig — the exact
// configurations BenchmarkSimEvents measures) outside the testing harness,
// so a single workload can be profiled:
//
//	dlion-bench -sim -sim-n 128 -cpuprofile sim.pprof -memprofile sim.mprof
//
// The profiles cover only the measured runs; go tool pprof reads them
// directly. With -json, an obs BENCH report of the events/s figures is
// written alongside.
func runSimBench(jsonPath string) error {
	var sizes []int
	for _, f := range strings.Split(*simSizes, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			return fmt.Errorf("bad -sim-n entry %q", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-sim-n selected no sizes")
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	jr := obs.NewReport("sim-bench", "dlion-bench/sim")
	jr.Config = map[string]any{"sizes": *simSizes, "churn": *simChurn, "runs": *simRuns}

	for _, n := range sizes {
		var cfg cluster.Config
		kind := "flat"
		if n >= 256 {
			cfg = cluster.FederationConfig(n)
			kind = "4-cloud"
		} else {
			cfg = cluster.SimEventsConfig(n, *simChurn)
		}
		var events uint64
		var elapsed float64
		for r := 0; r < *simRuns; r++ {
			start := time.Now()
			res, err := cluster.Run(cfg)
			if err != nil {
				return fmt.Errorf("n=%d: %w", n, err)
			}
			elapsed += time.Since(start).Seconds()
			events += res.Events
		}
		eps := float64(events) / elapsed
		fmt.Printf("sim n=%-5d %-8s %12d events  %10.1f events/s\n", n, kind, events, eps)
		jr.Experiments = append(jr.Experiments, obs.ExperimentReport{
			ID:    fmt.Sprintf("sim-n%d", n),
			Title: fmt.Sprintf("DES throughput, n=%d (%s)", n, kind),
			Values: map[string]float64{
				"events": float64(events), "events_per_sec": eps, "wall_sec": elapsed},
		})
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := jr.WriteFile(jsonPath); err != nil {
			return err
		}
		fmt.Println("json report written to", jsonPath)
	}
	return nil
}
