package dlion_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from
// internal/experiments on the fast profile and reports its headline values
// as benchmark metrics; run with -v to see the full rendered table.
//
//	go test -bench=Fig11 -benchtime=1x .
//	go test -bench=. -benchmem .        # the whole evaluation (slow)
//
// Absolute numbers differ from the paper (synthetic data, scaled models,
// simulated time); the shapes and orderings are the reproduction target —
// see EXPERIMENTS.md for the recorded comparison.

import (
	"strings"
	"testing"

	"dlion/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration (the
// multi-second runtime keeps b.N at 1 under the default -benchtime).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.Fast()
	for i := 0; i < b.N; i++ {
		o, err := exp.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", o.Text)
			for _, n := range o.Notes {
				b.Logf("note: %s", n)
			}
			for k, v := range o.Values {
				b.ReportMetric(v, sanitizeMetric(k))
			}
		}
	}
}

// sanitizeMetric makes experiment value keys valid benchmark unit names.
func sanitizeMetric(k string) string {
	k = strings.ReplaceAll(k, " ", "_")
	return strings.ReplaceAll(k, "/", ":")
}

func BenchmarkTable1_PluginLoC(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkTable2_AWSBandwidthMatrix(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3_Environments(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkFig05_GBSStartEpoch(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig06_LBSTrace(b *testing.B)            { runExperiment(b, "fig6") }
func BenchmarkFig07_MaxNAccuracy(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig08_PerLinkSize(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig09a_DKTPeriod(b *testing.B)          { runExperiment(b, "fig9a") }
func BenchmarkFig09b_DKTTargets(b *testing.B)         { runExperiment(b, "fig9b") }
func BenchmarkFig09c_DKTLambda(b *testing.B)          { runExperiment(b, "fig9c") }
func BenchmarkFig11_SystemHeterogeneity(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12_GPUCluster(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13_HeteroCompute(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkFig14_DBWUAblation(b *testing.B)        { runExperiment(b, "fig14") }
func BenchmarkFig15_HeteroNetwork(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16_Max10Alone(b *testing.B)          { runExperiment(b, "fig16") }
func BenchmarkFig17_AccuracyDeviation(b *testing.B)   { runExperiment(b, "fig17") }
func BenchmarkFig18_DynamicResources(b *testing.B)    { runExperiment(b, "fig18") }
func BenchmarkFig19_DynamicLBSTrace(b *testing.B)     { runExperiment(b, "fig19") }
func BenchmarkFig20_DynamicGradSize(b *testing.B)     { runExperiment(b, "fig20") }
func BenchmarkFig21_Convergence(b *testing.B)         { runExperiment(b, "fig21") }
func BenchmarkAblation_LinkBudget(b *testing.B)       { runExperiment(b, "ablation-budget") }
func BenchmarkAblation_DBClamp(b *testing.B)          { runExperiment(b, "ablation-dbclamp") }
func BenchmarkAblation_SyncStrategy(b *testing.B)     { runExperiment(b, "ablation-sync") }
func BenchmarkAblation_Selector(b *testing.B)         { runExperiment(b, "ablation-selector") }
