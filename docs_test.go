package dlion

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Docs-consistency gate (runs under `make test`, hence `make check` and CI):
// the operational docs promise commands and metric names; this file proves
// the promises against the Makefile and the source tree, so a renamed
// target or metric fails tier-1 instead of rotting in prose. WIRE.md has
// its own coverage test next to the codec (internal/wire/doc_test.go).

// makeTargetRef matches "make <target>" references in prose and shell
// blocks (an optional VAR=... prefix is already consumed by the word
// boundary).
var makeTargetRef = regexp.MustCompile(`\bmake ([a-z][a-z0-9-]*)`)

func TestDocsMakeTargetsExist(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, line := range strings.Split(string(mk), "\n") {
		if m := regexp.MustCompile(`^([a-z][a-z0-9-]*):`).FindStringSubmatch(line); m != nil {
			targets[m[1]] = true
		}
	}
	if len(targets) == 0 {
		t.Fatal("no targets parsed from Makefile")
	}
	for _, doc := range []string{"README.md", "TESTING.md"} {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range makeTargetRef.FindAllStringSubmatch(string(raw), -1) {
			if !targets[m[1]] {
				t.Errorf("%s references `make %s` but the Makefile has no such target", doc, m[1])
			}
		}
	}
}

// metricRow matches a METRICS.md table row whose first cell is a backticked
// dotted metric name — the registry counters/gauges/histograms and the
// sim-run counters. (Un-dotted names in other tables are JSON field names,
// covered by the schema tests next to their encoders.)
var metricRow = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+\\.[a-z0-9_.]+)`")

func TestDocsMetricNamesExistInSource(t *testing.T) {
	raw, err := os.ReadFile("METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range metricRow.FindAllStringSubmatch(string(raw), -1) {
		names = append(names, m[1])
	}
	if len(names) < 10 {
		t.Fatalf("only %d metric names parsed from METRICS.md — the table regex is broken", len(names))
	}

	// Concatenate all non-test Go source; each documented name must appear
	// somewhere a run can actually emit it.
	var src strings.Builder
	for _, root := range []string{"internal", "cmd", "."} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if root == "." && path != "." {
					return filepath.SkipDir // root package files only; internal/ and cmd/ walked above
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			src.Write(b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	code := src.String()
	for _, name := range names {
		if !strings.Contains(code, `"`+name+`"`) {
			t.Errorf("METRICS.md documents %q but no non-test source emits it", name)
		}
	}
}
