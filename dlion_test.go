package dlion_test

import (
	"testing"

	"dlion"
)

func TestSystemsAndEnvironments(t *testing.T) {
	if got := len(dlion.Systems()); got != 5 {
		t.Fatalf("systems %d", got)
	}
	for _, name := range []string{"dlion", "baseline", "ako", "gaia", "hop"} {
		if _, err := dlion.System(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := dlion.System("nope"); err == nil {
		t.Fatal("unknown system must error")
	}
	for _, name := range dlion.EnvironmentNames() {
		e, err := dlion.GetEnvironment(name, 1)
		if err != nil || e.N != 6 {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestQuickEndToEnd(t *testing.T) {
	res, err := dlion.Quick("dlion", "Hetero CPU A", 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.FinalMean() <= 0.12 {
		t.Fatalf("Quick run did not learn: %.3f", res.Timeline.FinalMean())
	}
	if len(res.Iters) != 6 {
		t.Fatalf("iters %v", res.Iters)
	}
}

func TestCustomEnvironmentViaFacade(t *testing.T) {
	caps := []dlion.Schedule{
		dlion.ConstantSchedule(24), dlion.ConstantSchedule(6),
	}
	nw := dlion.UniformNetwork(2, dlion.ConstantSchedule(100), dlion.LANLatency)
	e := dlion.CustomEnvironment("pair", caps, nw, 1)

	sys, _ := dlion.System("dlion")
	dc := dlion.CipherDataConfig(0.01, 3)
	model := dlion.CipherSpec(dc.Channels, dc.Height, dc.Width, dc.NumClasses, 0)
	res, err := dlion.Run(dlion.ExperimentConfig{
		System: sys, Model: model, Data: dc,
		N: e.N, Computes: e.Computes, Network: e.Network,
		Horizon: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// dynamic batching should give the 24-core worker the bigger share
	if res.Stats[0].SamplesProcessed <= res.Stats[1].SamplesProcessed {
		t.Fatalf("sample split wrong: %d vs %d",
			res.Stats[0].SamplesProcessed, res.Stats[1].SamplesProcessed)
	}
}

func TestAWSTable2Copies(t *testing.T) {
	m, regions := dlion.AWSTable2()
	if len(m) != 6 || len(regions) != 6 {
		t.Fatal("table 2 shape")
	}
	m[0][1] = -1
	m2, _ := dlion.AWSTable2()
	if m2[0][1] == -1 {
		t.Fatal("AWSTable2 must return a copy")
	}
}

func TestStepScheduleFacade(t *testing.T) {
	s := dlion.StepSchedule(0, 10, 100, 20)
	if s.At(50) != 10 || s.At(150) != 20 {
		t.Fatal("schedule values")
	}
}

func TestStreamingDataFacade(t *testing.T) {
	dc := dlion.CipherDataConfig(0.01, 3)
	gen, train, test, err := dlion.NewDataGenerator(dc)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() == 0 || test.Len() == 0 {
		t.Fatal("empty initial sets")
	}
	shards, err := dlion.PartitionData(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := shards[0].Len()
	if err := dlion.GrowShards(train, gen.Next(90), shards); err != nil {
		t.Fatal(err)
	}
	if shards[0].Len() != before+30 {
		t.Fatalf("shard grew by %d, want 30", shards[0].Len()-before)
	}
}

func TestCheckpointFacade(t *testing.T) {
	spec := dlion.CipherSpec(1, 8, 8, 4, 3)
	var m *dlion.Model = spec.Build()
	ck := m.Checkpoint()
	m2 := spec.Build()
	if err := m2.Restore(ck); err != nil {
		t.Fatal(err)
	}
}
