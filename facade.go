package dlion

import (
	"dlion/internal/data"
	"dlion/internal/env"
	"dlion/internal/fault"
	"dlion/internal/nn"
	"dlion/internal/queue"
	"dlion/internal/realtime"
	"dlion/internal/serve"
	"dlion/internal/simcompute"
	"dlion/internal/simnet"
)

// Resource-model types re-exported for building custom environments.
type (
	// Schedule is a piecewise-constant function of virtual time, used for
	// both compute capacity (cores) and link bandwidth (Mbps).
	Schedule = simcompute.Schedule
	// Network is a mesh of directed links with time-varying bandwidth.
	Network = simnet.Network
	// Link is one directed connection.
	Link = simnet.Link
)

// Fault-injection types re-exported for chaos experiments (DESIGN.md §7).
// Attach a FaultSchedule to ExperimentConfig.Faults; Result.Faults reports
// the injector's counters after the run.
type (
	// FaultSchedule declares worker crashes, link partitions, loss, delay,
	// corruption, and broker outages against virtual time.
	FaultSchedule = fault.Schedule
	// FaultWindow is a half-open [Start, End) activity window; End = 0
	// means "until the run ends".
	FaultWindow = fault.Window
	// FaultCrash stops a worker at At; RestartAfter > 0 restarts it from
	// the newest checkpoint and rejoins it to the cluster.
	FaultCrash = fault.Crash
	// FaultPartition drops messages on matching links during its window.
	FaultPartition = fault.Partition
	// FaultLoss drops a random fraction of messages on matching links.
	FaultLoss = fault.Loss
	// FaultDelay adds latency on matching links.
	FaultDelay = fault.Delay
	// FaultCorrupt corrupts (and thus drops) a random message fraction.
	FaultCorrupt = fault.Corrupt
	// FaultStats are the injector's counters, reported on Result.Faults.
	FaultStats = fault.Stats
)

// FaultAny wildcards a fault rule's endpoint to match every worker.
const FaultAny = fault.Any

// ConstantSchedule returns a schedule that always yields v.
func ConstantSchedule(v float64) Schedule { return simcompute.Constant(v) }

// StepSchedule builds a schedule from (time, value) pairs, e.g.
// StepSchedule(0, 24, 500, 12) is 24 until t=500 and 12 afterwards.
func StepSchedule(pairs ...float64) Schedule { return simcompute.Steps(pairs...) }

// UniformNetwork builds a full mesh where every link shares one bandwidth
// schedule and RTT.
func UniformNetwork(n int, bandwidth Schedule, rttSeconds float64) *Network {
	return simnet.Uniform(n, bandwidth, rttSeconds)
}

// EgressNetwork builds a full mesh where all links leaving worker i share
// schedule i — the shape of the paper's Table 3 network rows.
func EgressNetwork(schedules []Schedule, rttSeconds float64) *Network {
	return simnet.PerWorkerEgress(schedules, rttSeconds)
}

// MatrixNetwork builds a network from an explicit Mbps matrix, like the
// paper's Table 2 AWS measurements.
func MatrixNetwork(mbps [][]float64, rttSeconds float64) *Network {
	return simnet.FromMatrix(mbps, rttSeconds)
}

// AWSTable2 returns the paper's measured AWS inter-region bandwidth matrix
// (Mbps) and the region names.
func AWSTable2() (matrix [][]float64, regions []string) {
	m := make([][]float64, len(env.Table2))
	for i, row := range env.Table2 {
		m[i] = append([]float64(nil), row...)
	}
	return m, append([]string(nil), env.Table2Regions...)
}

// CustomEnvironment assembles an environment from per-worker capacity
// schedules (in CPU-core units) and a network.
func CustomEnvironment(name string, capacities []Schedule, nw *Network, seed uint64) *Environment {
	return env.Custom(name, capacities, nw, seed)
}

// DynamicEnvironment builds the Table 3 dynamic environments ("A" or "B")
// with a configurable phase length.
func DynamicEnvironment(variant string, phaseSeconds float64, seed uint64) *Environment {
	return env.Dynamic(variant, phaseSeconds, seed)
}

// Network timing constants from the paper's emulation.
const (
	LANMbps    = env.LANMbps
	LANLatency = env.RTTLan
	WANLatency = env.RTTWan
)

// Real-mode types: run workers over wall-clock time and a real message
// broker instead of the simulator.
type (
	// Broker is the in-memory Redis-substitute message broker.
	Broker = queue.Broker
	// BrokerServer exposes a Broker over TCP.
	BrokerServer = queue.Server
	// RealNode hosts one worker over wall time.
	RealNode = realtime.Node
	// RealNodeConfig assembles a real-mode node.
	RealNodeConfig = realtime.Config
	// Transport moves encoded messages between real-mode workers.
	Transport = realtime.Transport
)

// NewBroker returns an empty message broker.
func NewBroker() *Broker { return queue.NewBroker() }

// ServeBroker exposes a broker over TCP (addr like "127.0.0.1:0").
func ServeBroker(b *Broker, addr string) (*BrokerServer, error) {
	return queue.Serve(b, addr)
}

// NewBrokerTransport connects a real-mode worker to an in-process broker.
func NewBrokerTransport(b *Broker, workerID int) Transport {
	return realtime.NewBrokerTransport(b, workerID)
}

// NewTCPTransport connects a real-mode worker to a TCP broker.
func NewTCPTransport(addr string, workerID int) (Transport, error) {
	return realtime.NewClientTransport(addr, workerID)
}

// NewRealNode builds a real-mode node hosting one worker.
func NewRealNode(cfg RealNodeConfig) (*RealNode, error) { return realtime.NewNode(cfg) }

// GenerateData builds the train/test datasets for a DataConfig.
func GenerateData(cfg DataConfig) (train, test *Dataset, err error) {
	return dataGenerate(cfg)
}

// DataGenerator produces fresh samples over time — the continuously
// generated edge data the paper's introduction motivates.
type DataGenerator = data.Generator

// NewDataGenerator builds a generator plus the initial train/test sets.
func NewDataGenerator(cfg DataConfig) (*DataGenerator, *Dataset, *Dataset, error) {
	return data.NewGenerator(cfg)
}

// GrowShards appends freshly generated samples to the shared dataset and
// distributes them across the workers' shards round-robin.
func GrowShards(ds *Dataset, chunk *Dataset, shards []*Shard) error {
	return data.GrowEvenly(ds, chunk, shards)
}

// Model is a neural network with named weight variables (a worker's
// replica). Exposed for checkpoint/resume workflows.
type Model = nn.Model

// Serving types: the inference side of the train-near-data loop. A
// ServeRegistry holds hot-swappable model versions; a serve HTTP server
// answers /predict with dynamic micro-batching (DESIGN.md §8).
type (
	// ServeRegistry is a hot-swappable model version store.
	ServeRegistry = serve.Registry
	// ServeConfig assembles one inference server.
	ServeConfig = serve.Config
	// ServeServer is the HTTP inference handler (micro-batching /predict).
	ServeServer = serve.Server
	// ServeHTTPServer binds a ServeServer to a TCP listener.
	ServeHTTPServer = serve.HTTPServer
)

// ServeWeightsChannel is the broker PUB/SUB channel carrying weight
// broadcasts from training workers to inference servers.
const ServeWeightsChannel = serve.WeightsChannel

// NewServeRegistry returns an empty model registry for the given spec.
func NewServeRegistry(spec ModelSpec) *ServeRegistry { return serve.NewRegistry(spec) }

// ListenAndServeModels starts an inference server on addr (use port 0 for
// an ephemeral port; the returned server reports its URL).
func ListenAndServeModels(cfg ServeConfig, addr string) (*ServeHTTPServer, error) {
	return serve.Listen(cfg, addr)
}

// EncodeWeightsUpdate frames a checkpoint for ServeWeightsChannel; seq is
// the training iteration, which orders hot-swaps at the receivers.
func EncodeWeightsUpdate(seq int64, ckpt []byte) []byte {
	return serve.EncodeUpdate(seq, ckpt)
}
